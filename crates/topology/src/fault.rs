//! Fault masks: failed nodes and links overlaid on a healthy topology.
//!
//! The dissertation proves its multicast schemes deadlock-free on *healthy*
//! networks; this module supplies the degraded-network substrate for the
//! fault-injection and recovery layer. A [`FaultMask`] records which nodes
//! and physical links are down; the routing layer (`mcast-core`) plans
//! around it and the simulator (`mcast-sim`) refuses to grant dead
//! channels. A [`FaultSchedule`] additionally scripts *when* each fault
//! appears, so dynamic experiments can kill links mid-flight.
//!
//! Injection is deterministic: masks and schedules are derived from a
//! 64-bit seed through SplitMix64, with no dependency on an external RNG
//! crate, so every experiment is reproducible from its `(topology, rate,
//! seed)` triple.
//!
//! A physical fault takes out a *link*: both directions and every virtual
//! channel class riding on the wire. Masks therefore store undirected
//! node pairs; [`FaultMask::is_channel_alive`] ignores [`Channel::class`].

use std::collections::BTreeSet;

use crate::graph::{Channel, NodeId, Topology};

/// A deterministic overlay of failed nodes and failed links.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMask {
    failed_nodes: BTreeSet<NodeId>,
    /// Failed physical links, stored with endpoints ordered
    /// (`min(a,b), max(a,b)`); a failed link kills both directed channels
    /// in every class.
    failed_links: BTreeSet<(NodeId, NodeId)>,
}

impl FaultMask {
    /// The healthy mask: nothing failed.
    pub fn none() -> Self {
        FaultMask::default()
    }

    /// Whether the mask is empty (healthy network).
    pub fn is_empty(&self) -> bool {
        self.failed_nodes.is_empty() && self.failed_links.is_empty()
    }

    /// Marks a node as failed. All channels incident to it die with it.
    pub fn fail_node(&mut self, n: NodeId) -> &mut Self {
        self.failed_nodes.insert(n);
        self
    }

    /// Marks the physical link `{a, b}` as failed (both directions, every
    /// channel class).
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.failed_links.insert((a.min(b), a.max(b)));
        self
    }

    /// Reverts a link failure (used by connectivity-preserving samplers).
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.failed_links.remove(&(a.min(b), a.max(b)));
        self
    }

    /// Whether node `n` survives.
    pub fn is_node_alive(&self, n: NodeId) -> bool {
        !self.failed_nodes.contains(&n)
    }

    /// Whether the link `{a, b}` survives (endpoints alive and the wire
    /// itself not failed).
    pub fn is_link_alive(&self, a: NodeId, b: NodeId) -> bool {
        self.is_node_alive(a)
            && self.is_node_alive(b)
            && !self.failed_links.contains(&(a.min(b), a.max(b)))
    }

    /// Whether directed channel `c` survives. Class-independent: a fault
    /// kills the physical wire under every virtual class.
    pub fn is_channel_alive(&self, c: Channel) -> bool {
        self.is_link_alive(c.from, c.to)
    }

    /// The failed nodes, ascending.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.failed_nodes.iter().copied()
    }

    /// The failed links as ordered pairs, ascending.
    pub fn failed_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.failed_links.iter().copied()
    }

    /// Number of failed nodes.
    pub fn num_failed_nodes(&self) -> usize {
        self.failed_nodes.len()
    }

    /// Number of failed links.
    pub fn num_failed_links(&self) -> usize {
        self.failed_links.len()
    }

    /// The surviving channels of `topo` (all classes the topology reports).
    pub fn alive_channels<T: Topology + ?Sized>(&self, topo: &T) -> Vec<Channel> {
        topo.channels()
            .into_iter()
            .filter(|&c| self.is_channel_alive(c))
            .collect()
    }

    /// The surviving neighbors of `at` in `topo`.
    pub fn alive_neighbors<T: Topology + ?Sized>(&self, topo: &T, at: NodeId) -> Vec<NodeId> {
        topo.neighbors(at)
            .into_iter()
            .filter(|&n| self.is_link_alive(at, n))
            .collect()
    }

    /// Whether every surviving node can still reach every other surviving
    /// node over surviving links (BFS from the lowest surviving node).
    pub fn keeps_connected<T: Topology + ?Sized>(&self, topo: &T) -> bool {
        let n = topo.num_nodes();
        let Some(start) = (0..n).find(|&v| self.is_node_alive(v)) else {
            return false; // every node dead: vacuously disconnected
        };
        let mut seen = vec![false; n];
        let mut queue = vec![start];
        seen[start] = true;
        let mut reached = 1usize;
        while let Some(u) = queue.pop() {
            for v in topo.neighbors(u) {
                if !seen[v] && self.is_link_alive(u, v) {
                    seen[v] = true;
                    reached += 1;
                    queue.push(v);
                }
            }
        }
        reached == n - self.failed_nodes.len()
    }

    /// Fails each physical link of `topo` independently with probability
    /// `rate`, deterministically from `seed`. Nodes are left alive.
    pub fn random_links<T: Topology + ?Sized>(topo: &T, rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} out of [0, 1]"
        );
        let mut mask = FaultMask::none();
        let mut rng = SplitMix64::new(seed);
        for (a, b) in undirected_links(topo) {
            if rng.next_f64() < rate {
                mask.fail_link(a, b);
            }
        }
        mask
    }

    /// Like [`FaultMask::random_links`], but skips any failure that would
    /// disconnect the surviving network, so every destination stays
    /// reachable. Used by the property tests and the fault-sweep's
    /// "connected" mode.
    pub fn random_links_connected<T: Topology + ?Sized>(topo: &T, rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} out of [0, 1]"
        );
        let mut mask = FaultMask::none();
        let mut rng = SplitMix64::new(seed);
        for (a, b) in undirected_links(topo) {
            if rng.next_f64() < rate {
                mask.fail_link(a, b);
                if !mask.keeps_connected(topo) {
                    mask.restore_link(a, b);
                }
            }
        }
        mask
    }
}

/// Enumerates each physical link of `topo` once (class-0 channels with
/// `from < to`), in deterministic node order.
fn undirected_links<T: Topology + ?Sized>(topo: &T) -> Vec<(NodeId, NodeId)> {
    let mut links = Vec::new();
    for a in 0..topo.num_nodes() {
        for b in topo.neighbors(a) {
            if a < b {
                links.push((a, b));
            }
        }
    }
    links
}

/// A timed fault: at `time`, the given element dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The physical link `{a, b}` fails (both directions, all classes).
    LinkDown(NodeId, NodeId),
    /// Node `n` fails, with every incident link.
    NodeDown(NodeId),
}

/// A deterministic script of faults to inject over time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// `(time, fault)` pairs, sorted ascending by time.
    events: Vec<(u64, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Adds a fault at `time`, keeping the schedule sorted.
    pub fn push(&mut self, time: u64, fault: FaultEvent) -> &mut Self {
        let at = self.events.partition_point(|&(t, _)| t <= time);
        self.events.insert(at, (time, fault));
        self
    }

    /// The scheduled events, ascending by time.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// A deterministic schedule of `count` link failures at uniform random
    /// times in `[0, horizon)`, drawn without repetition from `topo`'s
    /// links. Panics if `count` exceeds the link count.
    pub fn random_links<T: Topology + ?Sized>(
        topo: &T,
        count: usize,
        horizon: u64,
        seed: u64,
    ) -> Self {
        let mut links = undirected_links(topo);
        assert!(
            count <= links.len(),
            "cannot schedule {count} faults on {} links",
            links.len()
        );
        let mut rng = SplitMix64::new(seed);
        // Partial Fisher–Yates: the first `count` entries become the sample.
        for i in 0..count {
            let j = i + (rng.next_u64() as usize) % (links.len() - i);
            links.swap(i, j);
        }
        let mut schedule = FaultSchedule::none();
        for &(a, b) in links.iter().take(count) {
            let t = if horizon == 0 {
                0
            } else {
                rng.next_u64() % horizon
            };
            schedule.push(t, FaultEvent::LinkDown(a, b));
        }
        schedule
    }

    /// Applies every fault scheduled at or before `time` to `mask`,
    /// returning how many events applied.
    pub fn apply_until(&self, time: u64, mask: &mut FaultMask) -> usize {
        let upto = self.events.partition_point(|&(t, _)| t <= time);
        for &(_, fault) in &self.events[..upto] {
            match fault {
                FaultEvent::LinkDown(a, b) => {
                    mask.fail_link(a, b);
                }
                FaultEvent::NodeDown(n) => {
                    mask.fail_node(n);
                }
            }
        }
        upto
    }
}

/// SplitMix64 (Steele, Lea & Flood): the minimal deterministic generator
/// behind seeded fault injection. Kept private to this module so the
/// topology crate stays dependency-free.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::mesh2d_snake;
    use crate::mesh2d::Mesh2D;

    #[test]
    fn empty_mask_is_healthy() {
        let m = Mesh2D::new(4, 3);
        let mask = FaultMask::none();
        assert!(mask.is_empty());
        assert!(mask.keeps_connected(&m));
        assert_eq!(mask.alive_channels(&m).len(), m.num_channels());
    }

    #[test]
    fn link_failure_kills_both_directions_and_all_classes() {
        let mut mask = FaultMask::none();
        mask.fail_link(5, 6);
        assert!(!mask.is_channel_alive(Channel::new(5, 6)));
        assert!(!mask.is_channel_alive(Channel::new(6, 5)));
        assert!(!mask.is_channel_alive(Channel::with_class(5, 6, 1)));
        assert!(mask.is_channel_alive(Channel::new(6, 7)));
    }

    #[test]
    fn node_failure_kills_incident_links() {
        let m = Mesh2D::new(3, 3);
        let mut mask = FaultMask::none();
        mask.fail_node(4); // center of the 3×3 mesh
        for nb in m.neighbors(4) {
            assert!(!mask.is_link_alive(4, nb));
        }
        // Remaining 8 nodes form a ring: still connected.
        assert!(mask.keeps_connected(&m));
    }

    #[test]
    fn corner_isolation_detected() {
        let m = Mesh2D::new(3, 3);
        let mut mask = FaultMask::none();
        // Cut both links of corner (0,0): node 0 to nodes 1 and 3.
        mask.fail_link(0, 1);
        mask.fail_link(0, 3);
        assert!(!mask.keeps_connected(&m));
    }

    #[test]
    fn random_masks_are_deterministic_and_rate_scaled() {
        let m = Mesh2D::new(8, 8);
        let a = FaultMask::random_links(&m, 0.2, 42);
        let b = FaultMask::random_links(&m, 0.2, 42);
        assert_eq!(a, b);
        let c = FaultMask::random_links(&m, 0.2, 43);
        assert_ne!(a, c, "different seeds should give different masks");
        assert_eq!(FaultMask::random_links(&m, 0.0, 1).num_failed_links(), 0);
        let total = undirected_links(&m).len();
        assert_eq!(
            FaultMask::random_links(&m, 1.0, 1).num_failed_links(),
            total
        );
        let frac = a.num_failed_links() as f64 / total as f64;
        assert!(
            (0.05..0.4).contains(&frac),
            "rate 0.2 produced fraction {frac}"
        );
    }

    #[test]
    fn connected_sampler_preserves_connectivity_even_at_high_rates() {
        let m = Mesh2D::new(6, 6);
        for seed in 0..20 {
            let mask = FaultMask::random_links_connected(&m, 0.5, seed);
            assert!(mask.keeps_connected(&m), "seed {seed}");
        }
    }

    #[test]
    fn high_low_subnetworks_survive_masking_acyclically() {
        // The label-monotone subnetworks are DAGs by construction, so any
        // surviving subset stays acyclic — the §6.2.2 deadlock-freedom
        // argument is closed under channel removal.
        let m = Mesh2D::new(5, 4);
        let l = mesh2d_snake(&m);
        let mask = FaultMask::random_links(&m, 0.3, 7);
        let report = crate::cdg::survivor_report(&m, &l, &mask);
        assert!(report.high_acyclic);
        assert!(report.low_acyclic);
        assert_eq!(report.surviving_channels, mask.alive_channels(&m).len());
    }

    #[test]
    fn schedule_applies_in_time_order() {
        let mut s = FaultSchedule::none();
        s.push(200, FaultEvent::LinkDown(2, 3));
        s.push(100, FaultEvent::NodeDown(7));
        s.push(300, FaultEvent::LinkDown(0, 1));
        let times: Vec<u64> = s.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![100, 200, 300]);
        let mut mask = FaultMask::none();
        assert_eq!(s.apply_until(250, &mut mask), 2);
        assert!(!mask.is_node_alive(7));
        assert!(!mask.is_link_alive(2, 3));
        assert!(mask.is_link_alive(0, 1));
    }

    #[test]
    fn random_schedule_is_deterministic() {
        let m = Mesh2D::new(6, 6);
        let a = FaultSchedule::random_links(&m, 5, 10_000, 9);
        let b = FaultSchedule::random_links(&m, 5, 10_000, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.events().windows(2).all(|w| w[0].0 <= w[1].0));
        // Distinct links.
        let mut links: Vec<_> = a
            .events()
            .iter()
            .map(|&(_, f)| match f {
                FaultEvent::LinkDown(x, y) => (x, y),
                FaultEvent::NodeDown(_) => unreachable!(),
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        assert_eq!(links.len(), 5);
    }
}
