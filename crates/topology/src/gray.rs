//! Reflected Gray codes.
//!
//! The hypercube label assignment of §6.3,
//! `ℓ(d_{n-1}…d_0) = Σ (c_i d̄_i + c̄_i d_i)·2^i` with
//! `c_i = d_{n-1} ⊕ … ⊕ d_{i+1}`, is exactly the *inverse* of the binary
//! reflected Gray code: bit `i` of `ℓ(v)` is the XOR of bits `i..n-1` of
//! `v`, so the node visited at position `ℓ` along the Hamiltonian path is
//! `gray_encode(ℓ)`. This module provides both directions plus the
//! generalized radix-`k` reflected Gray code used to label k-ary n-cubes.

/// Binary reflected Gray code of `i`: consecutive values differ in one bit.
#[inline]
pub fn gray_encode(i: usize) -> usize {
    i ^ (i >> 1)
}

/// Inverse of [`gray_encode`]: the position of address `g` in the Gray
/// sequence. This is the dissertation's hypercube label assignment `ℓ`.
#[inline]
pub fn gray_decode(g: usize) -> usize {
    // b_i = g_i ⊕ g_{i+1} ⊕ … ⊕ g_{n-1}: fold all right-shifts of g.
    let mut b = 0;
    let mut g = g;
    while g != 0 {
        b ^= g;
        g >>= 1;
    }
    b
}

/// Digits (dimension 0 first) of the `i`-th word of the radix-`k`
/// reflected Gray code over `n` digits.
///
/// Consecutive words differ by ±1 in exactly one digit, so the sequence is
/// a Hamiltonian path of the k-ary n-cube mesh (and of the torus, whose
/// links are a superset).
pub fn kary_gray_digits(mut i: usize, k: usize, n: u32) -> Vec<usize> {
    debug_assert!(k >= 2);
    // Reflected construction: digit d of the Gray word equals the base
    // digit when the sum of the more significant *Gray* digits is even,
    // and its reflection k−1−b when that sum is odd. For k = 2 this
    // telescopes to the classic g_d = b_d ⊕ b_{d+1}.
    let mut base = Vec::with_capacity(n as usize);
    for _ in 0..n {
        base.push(i % k);
        i /= k;
    }
    // base[d] is digit d (LSD first). Process from most significant down.
    let mut gray = vec![0usize; n as usize];
    let mut parity = 0usize; // sum of Gray digits above the current one
    for d in (0..n as usize).rev() {
        let g = if parity.is_multiple_of(2) {
            base[d]
        } else {
            k - 1 - base[d]
        };
        gray[d] = g;
        parity += g;
    }
    gray
}

/// Inverse of [`kary_gray_digits`]: the index of a Gray word given its
/// digits (dimension 0 first).
pub fn kary_gray_index(gray: &[usize], k: usize) -> usize {
    let n = gray.len();
    let mut i = 0usize;
    let mut parity = 0usize;
    for d in (0..n).rev() {
        let g = gray[d];
        let b = if parity.is_multiple_of(2) {
            g
        } else {
            k - 1 - g
        };
        i = i * k + b;
        parity += g;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_roundtrip() {
        for i in 0..4096 {
            assert_eq!(gray_decode(gray_encode(i)), i);
        }
    }

    #[test]
    fn consecutive_grays_differ_in_one_bit() {
        for i in 0..4095usize {
            let d = gray_encode(i) ^ gray_encode(i + 1);
            assert_eq!(d.count_ones(), 1, "i={i}");
        }
    }

    #[test]
    fn gray_cycle_wraps_for_powers_of_two() {
        // The Gray sequence over n bits is a Hamiltonian *cycle*: last and
        // first codes differ in one bit too.
        for n in 1..10u32 {
            let m = 1usize << n;
            let d = gray_encode(0) ^ gray_encode(m - 1);
            assert_eq!(d.count_ones(), 1, "n={n}");
        }
    }

    #[test]
    fn matches_dissertation_table_5_3() {
        // Table 5.3: Hamilton cycle of a 4-cube in visit order.
        let expected = [
            0b0000, 0b0001, 0b0011, 0b0010, 0b0110, 0b0111, 0b0101, 0b0100, 0b1100, 0b1101, 0b1111,
            0b1110, 0b1010, 0b1011, 0b1001, 0b1000,
        ];
        for (i, &addr) in expected.iter().enumerate() {
            assert_eq!(gray_encode(i), addr, "position {i}");
            assert_eq!(gray_decode(addr), i);
        }
    }

    #[test]
    fn paper_formula_matches_gray_decode() {
        // ℓ(d_{n-1}…d_0) = Σ (c_i ⊕ d_i) 2^i with c_i the XOR of the bits
        // above i (c_{n-1} = 0).
        let n = 8u32;
        for v in 0..(1usize << n) {
            let mut l = 0usize;
            for i in 0..n {
                let mut c = 0usize;
                for j in (i + 1)..n {
                    c ^= v >> j & 1;
                }
                let d = v >> i & 1;
                l |= (c ^ d) << i;
            }
            assert_eq!(l, gray_decode(v), "v={v:#b}");
        }
    }

    #[test]
    fn kary_gray_is_hamiltonian_path_of_digit_space() {
        for (k, n) in [(3usize, 3u32), (4, 3), (5, 2), (2, 6)] {
            let total = k.pow(n);
            let mut seen = vec![false; total];
            let mut prev: Option<Vec<usize>> = None;
            for i in 0..total {
                let g = kary_gray_digits(i, k, n);
                // Index roundtrip.
                assert_eq!(kary_gray_index(&g, k), i, "k={k} n={n} i={i}");
                // All digits in range; word unique.
                let as_num = g.iter().rev().fold(0, |a, &d| a * k + d);
                assert!(!seen[as_num], "duplicate word at {i}");
                seen[as_num] = true;
                // Differs from predecessor by ±1 in exactly one digit.
                if let Some(p) = prev {
                    let diffs: Vec<usize> = (0..n as usize).filter(|&d| p[d] != g[d]).collect();
                    assert_eq!(diffs.len(), 1, "k={k} n={n} i={i}");
                    let d = diffs[0];
                    assert_eq!(p[d].abs_diff(g[d]), 1, "k={k} n={n} i={i}");
                }
                prev = Some(g);
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn binary_kary_matches_binary_gray() {
        for i in 0..256 {
            let digits = kary_gray_digits(i, 2, 8);
            let word = digits.iter().rev().fold(0, |a, &d| a * 2 + d);
            assert_eq!(word, gray_encode(i));
        }
    }
}
