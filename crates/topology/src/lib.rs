//! Multicomputer network topologies and the structural machinery of the
//! dissertation *Multicast Communication in Multicomputer Networks*
//! (X. Lin; Lin & Ni, ICPP 1990).
//!
//! This crate is the substrate the routing algorithms and the wormhole
//! simulator are built on:
//!
//! * the host-graph topologies of Chapter 2 — [`mesh2d::Mesh2D`],
//!   [`mesh3d::Mesh3D`], [`hypercube::Hypercube`], and the general
//!   [`karyn::KAryNCube`] family — behind the [`graph::Topology`] trait;
//! * [`grid::GridGraph`]s, the source problems of Chapter 4's
//!   NP-completeness reductions;
//! * the Hamiltonian machinery of Chapters 5 and 6:
//!   [`hamiltonian::HamiltonCycle`] with the `h`/`f` mappings used by the
//!   sorted-MP algorithm, and [`labeling::Labeling`] with the `ℓ` label
//!   assignments (boustrophedon for meshes, Gray-code for cubes) that
//!   induce the high-/low-channel network partition;
//! * the four-quadrant double-channel [`partition`] of §6.2.1;
//! * [`cdg::ChannelDependencyGraph`]s — the Dally–Seitz deadlock-freedom
//!   criterion used to verify every routing scheme in the test suites.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ccc;
pub mod cdg;
pub mod fault;
pub mod graph;
pub mod gray;
pub mod grid;
pub mod hamiltonian;
pub mod hypercube;
pub mod karyn;
pub mod labeling;
pub mod mesh2d;
pub mod mesh3d;
pub mod partition;
pub mod topograph;

pub use ccc::CubeConnectedCycles;
pub use cdg::{ChannelDependencyGraph, SurvivorReport};
pub use fault::{FaultEvent, FaultMask, FaultSchedule};
pub use graph::{Channel, NodeId, Topology};
pub use grid::GridGraph;
pub use hamiltonian::HamiltonCycle;
pub use hypercube::Hypercube;
pub use karyn::KAryNCube;
pub use labeling::Labeling;
pub use mesh2d::{Dir2, Mesh2D};
pub use mesh3d::{Dir3, Mesh3D};
pub use partition::Quadrant;
pub use topograph::synth::{synthesize, CertifiedRouting, RoutingKind};
pub use topograph::{CustomGraph, TopographError};
