//! Finite grid graphs (§4.1, Itai–Papadimitriou–Szwarcfiter [51]).
//!
//! A *grid graph* is a finite node-induced subgraph of the infinite integer
//! lattice `G∞`: vertices are integer points, edges join points at
//! Euclidean distance 1. Grid graphs are the source problems of every
//! NP-completeness reduction in Chapter 4 (Hamiltonian cycle/path in grid
//! graphs → OMC/OMP/OMS in meshes and hypercubes).

use std::collections::HashMap;

use crate::graph::{NodeId, Topology};
use crate::mesh2d::Mesh2D;

/// A finite node-induced subgraph of the integer lattice.
#[derive(Debug, Clone)]
pub struct GridGraph {
    points: Vec<(i64, i64)>,
    index: HashMap<(i64, i64), NodeId>,
}

impl GridGraph {
    /// Creates a grid graph from a set of lattice points. Duplicates are
    /// removed; the node-id order follows first occurrence.
    pub fn new(points: impl IntoIterator<Item = (i64, i64)>) -> Self {
        let mut uniq = Vec::new();
        let mut index = HashMap::new();
        for p in points {
            if let std::collections::hash_map::Entry::Vacant(e) = index.entry(p) {
                e.insert(uniq.len());
                uniq.push(p);
            }
        }
        GridGraph {
            points: uniq,
            index,
        }
    }

    /// The lattice coordinates of node `n`.
    pub fn point(&self, n: NodeId) -> (i64, i64) {
        self.points[n]
    }

    /// The node at lattice point `p`, if present.
    pub fn node_at(&self, p: (i64, i64)) -> Option<NodeId> {
        self.index.get(&p).copied()
    }

    /// All lattice points, in node-id order.
    pub fn points(&self) -> &[(i64, i64)] {
        &self.points
    }

    /// Whether the grid graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.points.is_empty() {
            return true;
        }
        crate::graph::bfs_distances(self, 0)
            .iter()
            .all(|&d| d != usize::MAX)
    }

    /// The corner node `u` of Lemma 4.1: the point with minimum `x`, and
    /// among those minimum `y`. Its `(x−1, y)` and `(x, y−1)` neighbors are
    /// guaranteed absent.
    pub fn lemma_4_1_corner(&self) -> NodeId {
        let (i, _) = self
            .points
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(x, y))| (x, y))
            .expect("grid graph must be nonempty");
        i
    }

    /// Embeds this grid graph into the smallest enclosing 2D mesh
    /// (Theorem 4.1's polynomial construction of `M` from `G`). Returns the
    /// mesh and the mesh node id of each grid node.
    pub fn enclosing_mesh(&self) -> (Mesh2D, Vec<NodeId>) {
        assert!(!self.points.is_empty());
        let min_x = self.points.iter().map(|p| p.0).min().unwrap();
        let max_x = self.points.iter().map(|p| p.0).max().unwrap();
        let min_y = self.points.iter().map(|p| p.1).min().unwrap();
        let max_y = self.points.iter().map(|p| p.1).max().unwrap();
        let mesh = Mesh2D::new((max_x - min_x + 1) as usize, (max_y - min_y + 1) as usize);
        let ids = self
            .points
            .iter()
            .map(|&(x, y)| mesh.node((x - min_x) as usize, (y - min_y) as usize))
            .collect();
        (mesh, ids)
    }

    /// Whether `order` is a Hamiltonian cycle of this grid graph.
    pub fn is_hamiltonian_cycle(&self, order: &[NodeId]) -> bool {
        if order.len() != self.points.len() || order.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.points.len()];
        for &n in order {
            if n >= self.points.len() || seen[n] {
                return false;
            }
            seen[n] = true;
        }
        order.windows(2).all(|w| self.adjacent(w[0], w[1]))
            && self.adjacent(*order.last().unwrap(), order[0])
    }

    /// Finds a Hamiltonian cycle by exhaustive backtracking (exponential;
    /// for reduction tests on small instances only).
    pub fn find_hamiltonian_cycle(&self) -> Option<Vec<NodeId>> {
        let n = self.points.len();
        if n < 3 {
            return None;
        }
        let mut path = vec![0usize];
        let mut used = vec![false; n];
        used[0] = true;
        self.ham_dfs(&mut path, &mut used, true).then_some(path)
    }

    /// Finds a Hamiltonian path starting at `start` by backtracking.
    pub fn find_hamiltonian_path_from(&self, start: NodeId) -> Option<Vec<NodeId>> {
        let n = self.points.len();
        let mut path = vec![start];
        let mut used = vec![false; n];
        used[start] = true;
        self.ham_dfs(&mut path, &mut used, false).then_some(path)
    }

    fn ham_dfs(&self, path: &mut Vec<NodeId>, used: &mut [bool], cycle: bool) -> bool {
        if path.len() == used.len() {
            return !cycle || self.adjacent(*path.last().unwrap(), path[0]);
        }
        let last = *path.last().unwrap();
        for v in self.neighbors(last) {
            if !used[v] {
                used[v] = true;
                path.push(v);
                if self.ham_dfs(path, used, cycle) {
                    return true;
                }
                path.pop();
                used[v] = false;
            }
        }
        false
    }
}

impl Topology for GridGraph {
    fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Neighbors in `+X, -X, +Y, -Y` order (present ones only).
    fn neighbors_into(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let (x, y) = self.points[n];
        for p in [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)] {
            if let Some(m) = self.node_at(p) {
                out.push(m);
            }
        }
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        let (ax, ay) = self.points[a];
        let (bx, by) = self.points[b];
        ax.abs_diff(bx) + ay.abs_diff(by) == 1
    }

    fn diameter(&self) -> usize {
        (0..self.num_nodes())
            .map(|n| {
                crate::graph::bfs_distances(self, n)
                    .into_iter()
                    .filter(|&d| d != usize::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    fn describe(&self) -> String {
        format!("grid graph with {} nodes", self.points.len())
    }
}

/// The 8-node grid graph of Fig 4.2 / Example 4.1: nodes `v0..v7` with the
/// BFS layering `A0 = {v0}`, `A1 = {v1, v2}`, `A2 = {v3, v4}`,
/// `A3 = {v5, v6}`, `A4 = {v7}`.
///
/// The figure is reconstructed as the 2×4 block (a Hamiltonian grid graph
/// whose BFS layers from the corner have sizes 1,2,2,2,1).
pub fn example_4_1_grid() -> GridGraph {
    GridGraph::new([
        (0, 0), // v0
        (1, 0), // v1
        (0, 1), // v2
        (2, 0), // v3
        (1, 1), // v4
        (3, 0), // v5
        (2, 1), // v6
        (3, 1), // v7
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_grid_layers_match_example_4_1() {
        let g = example_4_1_grid();
        assert!(g.is_connected());
        let d = crate::graph::bfs_distances(&g, 0);
        let layer = |i: usize| -> Vec<usize> { (0..8).filter(|&v| d[v] == i).collect() };
        assert_eq!(layer(0), vec![0]);
        assert_eq!(layer(1), vec![1, 2]);
        assert_eq!(layer(2), vec![3, 4]);
        assert_eq!(layer(3), vec![5, 6]);
        assert_eq!(layer(4), vec![7]);
    }

    #[test]
    fn example_grid_has_hamiltonian_cycle() {
        let g = example_4_1_grid();
        let cyc = g
            .find_hamiltonian_cycle()
            .expect("2x4 block is Hamiltonian");
        assert!(g.is_hamiltonian_cycle(&cyc));
    }

    #[test]
    fn l_shape_has_no_hamiltonian_cycle() {
        // A 3-node L: path graph, no cycle.
        let g = GridGraph::new([(0, 0), (1, 0), (1, 1)]);
        assert!(g.find_hamiltonian_cycle().is_none());
        // The 3-node L is a path graph: Hamiltonian paths exist only from
        // its endpoints, never from the middle node (1,0).
        assert!(g.find_hamiltonian_path_from(0).is_some());
        assert!(g.find_hamiltonian_path_from(1).is_none());
        assert!(g.find_hamiltonian_path_from(2).is_some());
    }

    #[test]
    fn corner_selection_matches_lemma_4_1() {
        let g = GridGraph::new([(2, 3), (1, 1), (1, 2), (2, 1), (2, 2)]);
        let u = g.lemma_4_1_corner();
        assert_eq!(g.point(u), (1, 1));
        // Its west and south neighbors are outside the graph.
        assert!(g.node_at((0, 1)).is_none());
        assert!(g.node_at((1, 0)).is_none());
    }

    #[test]
    fn enclosing_mesh_preserves_adjacency() {
        let g = GridGraph::new([(5, 5), (6, 5), (6, 6), (7, 6)]);
        let (mesh, ids) = g.enclosing_mesh();
        assert_eq!(mesh.width(), 3);
        assert_eq!(mesh.height(), 2);
        for a in 0..g.num_nodes() {
            for b in 0..g.num_nodes() {
                if g.adjacent(a, b) {
                    assert!(mesh.adjacent(ids[a], ids[b]));
                }
            }
        }
    }

    #[test]
    fn duplicate_points_deduplicated() {
        let g = GridGraph::new([(0, 0), (0, 0), (1, 0)]);
        assert_eq!(g.num_nodes(), 2);
    }
}
