//! Hamiltonian-path node labelings and the high/low-channel network
//! partition (§6.2.2, §6.3).
//!
//! Every deadlock-free path-based multicast scheme in Chapter 6 starts from
//! a label assignment `ℓ` that enumerates a Hamiltonian path: the first node
//! of the path gets label 0, the last gets `N−1`. The labeling splits the
//! directed channels into the *high-channel network* (from lower to higher
//! labels) and the *low-channel network* (from higher to lower labels);
//! each is acyclic, which is what makes the routing schemes deadlock-free.

use crate::graph::{Channel, NodeId, Topology};
use crate::gray::{gray_decode, gray_encode, kary_gray_digits, kary_gray_index};
use crate::hypercube::Hypercube;
use crate::karyn::KAryNCube;
use crate::mesh2d::Mesh2D;
use crate::mesh3d::Mesh3D;

/// A bijective node labeling along a Hamiltonian path.
///
/// Stored densely in both directions so `label` and `node_at` are O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    label_of: Vec<usize>,
    node_at: Vec<NodeId>,
}

impl Labeling {
    /// Builds a labeling from an explicit Hamiltonian path (node visiting
    /// order). Verifies bijectivity; path adjacency is the caller's
    /// responsibility (checked separately by
    /// [`Labeling::is_hamiltonian_path_of`]).
    ///
    /// # Panics
    /// Panics if `path` is not a permutation of `0..path.len()`.
    pub fn from_path(path: Vec<NodeId>) -> Self {
        let n = path.len();
        let mut label_of = vec![usize::MAX; n];
        for (l, &node) in path.iter().enumerate() {
            assert!(node < n, "node id {node} out of range");
            assert_eq!(label_of[node], usize::MAX, "node {node} appears twice");
            label_of[node] = l;
        }
        Labeling {
            label_of,
            node_at: path,
        }
    }

    /// Number of nodes labeled.
    pub fn len(&self) -> usize {
        self.node_at.len()
    }

    /// Whether the labeling is empty (it never is for a valid topology).
    pub fn is_empty(&self) -> bool {
        self.node_at.is_empty()
    }

    /// The label `ℓ(n)` of a node.
    #[inline]
    pub fn label(&self, n: NodeId) -> usize {
        self.label_of[n]
    }

    /// The node with label `l`.
    #[inline]
    pub fn node_at(&self, l: usize) -> NodeId {
        self.node_at[l]
    }

    /// The Hamiltonian path as a node sequence (label order).
    pub fn path(&self) -> &[NodeId] {
        &self.node_at
    }

    /// Checks that consecutive labels are adjacent in `topo`, i.e. the
    /// labeling really enumerates a Hamiltonian path.
    pub fn is_hamiltonian_path_of<T: Topology + ?Sized>(&self, topo: &T) -> bool {
        self.len() == topo.num_nodes() && self.node_at.windows(2).all(|w| topo.adjacent(w[0], w[1]))
    }

    /// Whether channel `c` belongs to the high-channel network
    /// (`ℓ(from) < ℓ(to)`).
    #[inline]
    pub fn is_high(&self, c: Channel) -> bool {
        self.label(c.from) < self.label(c.to)
    }

    /// The channels of the high-channel subnetwork of `topo`.
    pub fn high_channels<T: Topology + ?Sized>(&self, topo: &T) -> Vec<Channel> {
        topo.channels()
            .into_iter()
            .filter(|&c| self.is_high(c))
            .collect()
    }

    /// The channels of the low-channel subnetwork of `topo`.
    pub fn low_channels<T: Topology + ?Sized>(&self, topo: &T) -> Vec<Channel> {
        topo.channels()
            .into_iter()
            .filter(|&c| !self.is_high(c))
            .collect()
    }
}

/// The dissertation's 2D-mesh label assignment (§6.2.2):
/// `ℓ(x, y) = y·w + x` for even rows, `y·w + w − x − 1` for odd rows — the
/// boustrophedon ("snake") Hamiltonian path starting at `(0, 0)`.
///
/// ```
/// use mcast_topology::labeling::mesh2d_snake;
/// use mcast_topology::Mesh2D;
///
/// let mesh = Mesh2D::new(4, 3);
/// let l = mesh2d_snake(&mesh);
/// assert!(l.is_hamiltonian_path_of(&mesh));
/// assert_eq!(l.label(mesh.node(0, 0)), 0);
/// assert_eq!(l.label(mesh.node(3, 1)), 4); // odd rows run right-to-left
/// ```
pub fn mesh2d_snake(mesh: &Mesh2D) -> Labeling {
    let w = mesh.width();
    let path = (0..mesh.num_nodes())
        .map(|l| {
            let y = l / w;
            let x = if y.is_multiple_of(2) {
                l % w
            } else {
                w - 1 - l % w
            };
            mesh.node(x, y)
        })
        .collect();
    Labeling::from_path(path)
}

/// The label `ℓ(x, y)` of the snake labeling in closed form, matching
/// §6.2.2's definition.
pub fn mesh2d_snake_label(mesh: &Mesh2D, x: usize, y: usize) -> usize {
    let w = mesh.width();
    if y.is_multiple_of(2) {
        y * w + x
    } else {
        y * w + w - x - 1
    }
}

/// The hypercube label assignment of §6.3: `ℓ(v) = gray_decode(v)`, so the
/// Hamiltonian path visits the binary reflected Gray code sequence.
pub fn hypercube_gray(cube: &Hypercube) -> Labeling {
    let path = (0..cube.num_nodes()).map(gray_encode).collect();
    let l = Labeling::from_path(path);
    debug_assert!((0..cube.num_nodes()).all(|v| l.label(v) == gray_decode(v)));
    l
}

/// A layered boustrophedon labeling for 3D meshes: each `z` layer is
/// traversed by the 2D snake, with odd layers reversed so consecutive
/// labels stay adjacent across layer boundaries.
pub fn mesh3d_snake(mesh: &Mesh3D) -> Labeling {
    let layer = Mesh2D::new(mesh.width(), mesh.height());
    let per_layer = layer.num_nodes();
    let snake = mesh2d_snake(&layer);
    let mut path = Vec::with_capacity(mesh.num_nodes());
    for z in 0..mesh.depth() {
        for i in 0..per_layer {
            let idx = if z % 2 == 0 { i } else { per_layer - 1 - i };
            let (x, y) = layer.coords(snake.node_at(idx));
            path.push(mesh.node(x, y, z));
        }
    }
    Labeling::from_path(path)
}

/// Radix-k reflected-Gray-code labeling for k-ary n-cubes: consecutive
/// labels differ by ±1 in one digit, hence are adjacent in both the mesh
/// and torus variants.
pub fn karyn_gray(cube: &KAryNCube) -> Labeling {
    let k = cube.k();
    let n = cube.n();
    let path = (0..cube.num_nodes())
        .map(|i| cube.from_digits(&kary_gray_digits(i, k, n)))
        .collect();
    let l = Labeling::from_path(path);
    debug_assert!((0..cube.num_nodes()).all(|v| l.label(v) == kary_gray_index(&cube.digits(v), k)));
    l
}

/// The *alternative* 4×3-mesh labeling of Fig. 6.10 (column-major snake),
/// provided to demonstrate that routing quality depends on the choice of
/// Hamiltonian path (§6.2.2's discussion of non-shortest paths).
pub fn mesh2d_column_snake(mesh: &Mesh2D) -> Labeling {
    let h = mesh.height();
    let path = (0..mesh.num_nodes())
        .map(|l| {
            let x = l / h;
            let y = if x.is_multiple_of(2) {
                l % h
            } else {
                h - 1 - l % h
            };
            mesh.node(x, y)
        })
        .collect();
    Labeling::from_path(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    #[test]
    fn snake_matches_closed_form_and_fig_6_9() {
        // Fig 6.9(a): 4×3 mesh row-snake labels.
        let m = Mesh2D::new(4, 3);
        let l = mesh2d_snake(&m);
        assert!(l.is_hamiltonian_path_of(&m));
        // Row 0 left-to-right: labels 0..3.
        assert_eq!(l.label(m.node(0, 0)), 0);
        assert_eq!(l.label(m.node(3, 0)), 3);
        // Row 1 right-to-left: (3,1) -> 4, (0,1) -> 7.
        assert_eq!(l.label(m.node(3, 1)), 4);
        assert_eq!(l.label(m.node(0, 1)), 7);
        // Row 2 left-to-right again.
        assert_eq!(l.label(m.node(0, 2)), 8);
        assert_eq!(l.label(m.node(3, 2)), 11);
        for y in 0..3 {
            for x in 0..4 {
                assert_eq!(l.label(m.node(x, y)), mesh2d_snake_label(&m, x, y));
            }
        }
    }

    #[test]
    fn snake_label_example_from_section_6_2_2() {
        // §6.2.2 notes that under the Fig 6.10 column labeling, nodes (1,0)
        // and (1,2) get labels 4 and 8 but are 4 channels apart in either
        // subnetwork; the row-snake gives them a 2-hop monotone path.
        let m = Mesh2D::new(4, 3);
        let col = mesh2d_column_snake(&m);
        assert!(col.is_hamiltonian_path_of(&m));
        assert_eq!(col.label(m.node(1, 0)), 5); // column snake: x=1 top-down reversed
        let row = mesh2d_snake(&m);
        assert_eq!(row.label(m.node(1, 0)), 1);
        assert_eq!(row.label(m.node(1, 2)), 9);
    }

    #[test]
    fn gray_labeling_is_hamiltonian() {
        for dim in 1..=8 {
            let c = Hypercube::new(dim);
            let l = hypercube_gray(&c);
            assert!(l.is_hamiltonian_path_of(&c), "dim {dim}");
        }
    }

    #[test]
    fn gray_labeling_matches_fig_6_18() {
        // Fig 6.18(a): 3-cube labels along Gray path 000,001,011,010,110,
        // 111,101,100 get labels 0..7.
        let c = Hypercube::new(3);
        let l = hypercube_gray(&c);
        let order = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(l.label(v), i);
            assert_eq!(l.node_at(i), v);
        }
    }

    #[test]
    fn mesh3d_snake_is_hamiltonian() {
        for (w, h, d) in [(3, 3, 3), (4, 3, 2), (2, 2, 5), (5, 4, 3)] {
            let m = Mesh3D::new(w, h, d);
            let l = mesh3d_snake(&m);
            assert!(l.is_hamiltonian_path_of(&m), "{w}x{h}x{d}");
        }
    }

    #[test]
    fn karyn_gray_is_hamiltonian() {
        for (k, n) in [(3usize, 3u32), (4, 2), (5, 2), (2, 5)] {
            let mesh = KAryNCube::mesh(k, n);
            let l = karyn_gray(&mesh);
            assert!(l.is_hamiltonian_path_of(&mesh), "mesh k={k} n={n}");
            let torus = KAryNCube::torus(k, n);
            let lt = karyn_gray(&torus);
            assert!(lt.is_hamiltonian_path_of(&torus), "torus k={k} n={n}");
        }
    }

    #[test]
    fn high_low_channels_partition_all_channels() {
        let m = Mesh2D::new(4, 3);
        let l = mesh2d_snake(&m);
        let hi = l.high_channels(&m);
        let lo = l.low_channels(&m);
        assert_eq!(hi.len() + lo.len(), m.num_channels());
        // The two subnetworks are mirror images.
        let mut lo_rev: Vec<_> = lo.iter().map(|c| c.reversed()).collect();
        let mut hi_sorted = hi.clone();
        hi_sorted.sort_unstable();
        lo_rev.sort_unstable();
        assert_eq!(hi_sorted, lo_rev);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_node_in_path_rejected() {
        let _ = Labeling::from_path(vec![0, 1, 1]);
    }
}
