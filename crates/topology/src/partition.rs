//! Network partitioning for the double-channel tree-like multicast scheme
//! of §6.2.1.
//!
//! Every physical mesh channel is doubled and the resulting channels are
//! divided into four acyclic subnetworks `N_{+X,+Y}`, `N_{−X,+Y}`,
//! `N_{−X,−Y}`, `N_{+X,−Y}` (Fig 6.5). A multicast from `u0` is split into
//! at most four sub-multicasts, one per quadrant, each routed entirely
//! inside its own subnetwork — so no cyclic channel dependency can form.

use crate::graph::{Channel, NodeId};
use crate::mesh2d::{Dir2, Mesh2D};

/// One of the four quadrant subnetworks of §6.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// `N_{+X,+Y}`: channels pointing `+X` or `+Y`.
    PosXPosY,
    /// `N_{−X,+Y}`: channels pointing `−X` or `+Y`.
    NegXPosY,
    /// `N_{−X,−Y}`: channels pointing `−X` or `−Y`.
    NegXNegY,
    /// `N_{+X,−Y}`: channels pointing `+X` or `−Y`.
    PosXNegY,
}

impl Quadrant {
    /// All four quadrants, counter-clockwise from `N_{+X,+Y}`.
    pub const ALL: [Quadrant; 4] = [
        Quadrant::PosXPosY,
        Quadrant::NegXPosY,
        Quadrant::NegXNegY,
        Quadrant::PosXNegY,
    ];

    /// The two channel directions a quadrant subnetwork contains.
    pub const fn directions(self) -> [Dir2; 2] {
        match self {
            Quadrant::PosXPosY => [Dir2::PosX, Dir2::PosY],
            Quadrant::NegXPosY => [Dir2::NegX, Dir2::PosY],
            Quadrant::NegXNegY => [Dir2::NegX, Dir2::NegY],
            Quadrant::PosXNegY => [Dir2::PosX, Dir2::NegY],
        }
    }

    /// Whether a channel of direction `d` belongs to this subnetwork.
    pub fn contains_dir(self, d: Dir2) -> bool {
        self.directions().contains(&d)
    }

    /// The channel *class* (0 or 1) assigned to this quadrant's copy of a
    /// physical channel of direction `d`.
    ///
    /// Each physical direction appears in exactly two quadrants; doubling
    /// gives each quadrant its own copy. Class 0 goes to `N_{+X,+Y}` /
    /// `N_{−X,−Y}`, class 1 to the other two.
    ///
    /// # Panics
    /// Panics if `d` is not a direction of this quadrant.
    pub fn channel_class(self, d: Dir2) -> u8 {
        assert!(self.contains_dir(d), "{self:?} has no {d:?} channels");
        match self {
            Quadrant::PosXPosY | Quadrant::NegXNegY => 0,
            Quadrant::NegXPosY | Quadrant::PosXNegY => 1,
        }
    }
}

/// The quadrant a destination falls into relative to source `u0`, using the
/// rotationally symmetric half-open convention of DESIGN.md §5 (the
/// dissertation's prose "upper right / upper left / …" with ties broken so
/// every node except `u0` belongs to exactly one quadrant):
///
/// * `D_{+X,+Y} = { x > x0, y ≥ y0 }`
/// * `D_{−X,+Y} = { x ≤ x0, y > y0 }`
/// * `D_{−X,−Y} = { x < x0, y ≤ y0 }`
/// * `D_{+X,−Y} = { x ≥ x0, y < y0 }`
///
/// Returns `None` when `dest == u0`.
pub fn quadrant_of(mesh: &Mesh2D, u0: NodeId, dest: NodeId) -> Option<Quadrant> {
    let (x0, y0) = mesh.coords(u0);
    let (x, y) = mesh.coords(dest);
    if (x, y) == (x0, y0) {
        None
    } else if x > x0 && y >= y0 {
        Some(Quadrant::PosXPosY)
    } else if x <= x0 && y > y0 {
        Some(Quadrant::NegXPosY)
    } else if x < x0 && y <= y0 {
        Some(Quadrant::NegXNegY)
    } else {
        debug_assert!(x >= x0 && y < y0);
        Some(Quadrant::PosXNegY)
    }
}

/// Splits a destination set into its four quadrant subsets
/// (`D_{+X,+Y}, D_{−X,+Y}, D_{−X,−Y}, D_{+X,−Y}` in [`Quadrant::ALL`]
/// order). Destinations equal to `u0` are dropped.
pub fn split_by_quadrant(mesh: &Mesh2D, u0: NodeId, dests: &[NodeId]) -> [Vec<NodeId>; 4] {
    let mut out: [Vec<NodeId>; 4] = Default::default();
    for &d in dests {
        if let Some(q) = quadrant_of(mesh, u0, d) {
            out[q as usize].push(d);
        }
    }
    out
}

/// All channels (with quadrant-assigned classes) of one quadrant subnetwork
/// of a double-channel mesh.
pub fn quadrant_channels(mesh: &Mesh2D, q: Quadrant) -> Vec<Channel> {
    use crate::graph::Topology;
    mesh.channels()
        .into_iter()
        .filter(|&c| q.contains_dir(mesh.channel_direction(c)))
        .map(|c| Channel::with_class(c.from, c.to, q.channel_class(mesh.channel_direction(c))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    #[test]
    fn quadrants_partition_all_non_source_nodes() {
        let m = Mesh2D::new(6, 6);
        for u0 in 0..m.num_nodes() {
            let mut count = 0;
            for d in 0..m.num_nodes() {
                match quadrant_of(&m, u0, d) {
                    None => assert_eq!(d, u0),
                    Some(_) => count += 1,
                }
            }
            assert_eq!(count, m.num_nodes() - 1);
        }
    }

    #[test]
    fn quadrant_membership_is_routable_within_subnetwork() {
        // Every destination in quadrant q must be reachable from u0 using
        // only the two directions of q.
        let m = Mesh2D::new(5, 7);
        for u0 in 0..m.num_nodes() {
            let (x0, y0) = m.coords(u0);
            for d in 0..m.num_nodes() {
                if let Some(q) = quadrant_of(&m, u0, d) {
                    let (x, y) = m.coords(d);
                    let dirs = q.directions();
                    let need_x: Option<Dir2> = match x.cmp(&x0) {
                        std::cmp::Ordering::Greater => Some(Dir2::PosX),
                        std::cmp::Ordering::Less => Some(Dir2::NegX),
                        std::cmp::Ordering::Equal => None,
                    };
                    let need_y: Option<Dir2> = match y.cmp(&y0) {
                        std::cmp::Ordering::Greater => Some(Dir2::PosY),
                        std::cmp::Ordering::Less => Some(Dir2::NegY),
                        std::cmp::Ordering::Equal => None,
                    };
                    for need in [need_x, need_y].into_iter().flatten() {
                        assert!(
                            dirs.contains(&need),
                            "dest {d} in {q:?} needs {need:?} from {u0}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fig_6_5_channel_counts() {
        // 3×4 mesh (Fig 6.5): each quadrant subnetwork has one directed
        // copy of every horizontal and vertical link.
        let m = Mesh2D::new(4, 3);
        let horiz = 3 * (4 - 1);
        let vert = 4 * (3 - 1);
        for q in Quadrant::ALL {
            assert_eq!(quadrant_channels(&m, q).len(), horiz + vert, "{q:?}");
        }
    }

    #[test]
    fn doubled_channels_are_distinct_across_quadrants() {
        let m = Mesh2D::new(4, 4);
        let mut all: Vec<Channel> = Quadrant::ALL
            .iter()
            .flat_map(|&q| quadrant_channels(&m, q))
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            before,
            "no channel shared between quadrant subnetworks"
        );
        // Exactly double the single-channel network.
        assert_eq!(before, 2 * m.num_channels());
    }

    #[test]
    fn section_6_2_1_example_split() {
        // §6.2.1 example: 6×6 mesh, source (3,2), destinations split into
        // the four quadrant sets listed in the text.
        let m = Mesh2D::new(6, 6);
        let u0 = m.node(3, 2);
        let coords = [
            (0, 0),
            (0, 2),
            (0, 5),
            (1, 3),
            (4, 5),
            (5, 0),
            (5, 1),
            (5, 3),
            (5, 4),
        ];
        let dests: Vec<_> = coords.iter().map(|&(x, y)| m.node(x, y)).collect();
        let split = split_by_quadrant(&m, u0, &dests);
        let as_coords =
            |v: &Vec<usize>| -> Vec<(usize, usize)> { v.iter().map(|&n| m.coords(n)).collect() };
        assert_eq!(
            as_coords(&split[Quadrant::PosXPosY as usize]),
            vec![(4, 5), (5, 3), (5, 4)]
        );
        assert_eq!(
            as_coords(&split[Quadrant::NegXPosY as usize]),
            vec![(0, 5), (1, 3)]
        );
        assert_eq!(
            as_coords(&split[Quadrant::NegXNegY as usize]),
            vec![(0, 0), (0, 2)]
        );
        assert_eq!(
            as_coords(&split[Quadrant::PosXNegY as usize]),
            vec![(5, 0), (5, 1)]
        );
    }
}
