//! Hamiltonian cycles and the `h` position mapping used by the sorted
//! MP/MC algorithms (§5.1, Tables 5.1–5.4).
//!
//! The sorted-MP algorithm fixes one Hamiltonian cycle
//! `C = (v_1, …, v_m, v_1)` of the host graph and maps every node to its
//! 1-based position `h(v_i) = i`. The facts it relies on (F1–F3 in §5.1):
//! an `N₁×N₂` mesh has a Hamiltonian cycle when `N₁` or `N₂` is even, and
//! an n-cube always has one (the Gray code).

use crate::graph::{NodeId, Topology};
use crate::gray::gray_encode;
use crate::hypercube::Hypercube;
use crate::mesh2d::Mesh2D;

/// A Hamiltonian cycle together with the `h` position mapping of §5.1.
#[derive(Debug, Clone)]
pub struct HamiltonCycle {
    /// Visit order: `order[i]` is node `v_{i+1}` (so `h(order[i]) = i + 1`).
    order: Vec<NodeId>,
    /// `h(node)`, 1-based.
    h: Vec<usize>,
}

impl HamiltonCycle {
    /// Builds the cycle structure from a visit order, verifying it is a
    /// Hamiltonian cycle of `topo`.
    ///
    /// # Panics
    /// Panics if `order` is not a Hamiltonian cycle.
    pub fn from_order<T: Topology + ?Sized>(topo: &T, order: Vec<NodeId>) -> Self {
        assert_eq!(
            order.len(),
            topo.num_nodes(),
            "cycle must visit every node once"
        );
        let mut h = vec![0usize; order.len()];
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(h[v], 0, "node {v} visited twice");
            h[v] = i + 1;
        }
        for w in order.windows(2) {
            assert!(
                topo.adjacent(w[0], w[1]),
                "nodes {} and {} not adjacent",
                w[0],
                w[1]
            );
        }
        assert!(
            topo.adjacent(*order.last().unwrap(), order[0]),
            "cycle does not close: {} and {} not adjacent",
            order.last().unwrap(),
            order[0]
        );
        HamiltonCycle { order, h }
    }

    /// Number of nodes `m` on the cycle.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the cycle is empty (never, for valid topologies).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The 1-based position `h(v)` of node `v` on the cycle.
    #[inline]
    pub fn h(&self, v: NodeId) -> usize {
        self.h[v]
    }

    /// The node at 1-based position `i`.
    #[inline]
    pub fn node_at(&self, i: usize) -> NodeId {
        self.order[i - 1]
    }

    /// The visit order (`v_1, …, v_m`).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The sorting key `f` of the sorted-MP algorithm (Fig 5.1/5.2):
    /// positions are rotated so the source `u0` comes first —
    /// `f(x) = h(x) + m` if `h(x) < h(u0)`, else `h(x)`.
    #[inline]
    pub fn f(&self, u0: NodeId, x: NodeId) -> usize {
        let hx = self.h(x);
        if hx < self.h(u0) {
            hx + self.len()
        } else {
            hx
        }
    }
}

/// The canonical Hamiltonian cycle of a 2D mesh (Table 5.1's construction):
/// traverse row 0 left-to-right, snake through rows `1..h` over columns
/// `1..w`, then return up column 0.
///
/// Exists whenever the mesh has at least 2 rows and 2 columns and at least
/// one even dimension (§5.1's standing assumption). When the height is odd
/// the transposed construction is used.
///
/// # Panics
/// Panics if no Hamiltonian cycle exists (either dimension is 1, or both
/// are odd — a parity argument on the bipartite mesh rules the latter out).
pub fn mesh2d_cycle(mesh: &Mesh2D) -> HamiltonCycle {
    let (w, h) = (mesh.width(), mesh.height());
    assert!(
        w >= 2 && h >= 2,
        "a {}x{} mesh has no Hamiltonian cycle",
        w,
        h
    );
    assert!(
        w % 2 == 0 || h % 2 == 0,
        "a mesh with both dimensions odd has no Hamiltonian cycle"
    );
    let mut order = Vec::with_capacity(mesh.num_nodes());
    if h % 2 == 0 {
        // Row 0 rightward, snake rows 1..h over columns 1..w (downward),
        // then up column 0. Requires h even so the snake ends at (1, h-1).
        for x in 0..w {
            order.push(mesh.node(x, 0));
        }
        for y in 1..h {
            if y % 2 == 1 {
                for x in (1..w).rev() {
                    order.push(mesh.node(x, y));
                }
            } else {
                for x in 1..w {
                    order.push(mesh.node(x, y));
                }
            }
        }
        for y in (1..h).rev() {
            order.push(mesh.node(0, y));
        }
    } else {
        // Transposed: column 0 downward, snake columns 1..w over rows 1..h,
        // then back along row 0.
        for y in 0..h {
            order.push(mesh.node(0, y));
        }
        for x in 1..w {
            if x % 2 == 1 {
                for y in (1..h).rev() {
                    order.push(mesh.node(x, y));
                }
            } else {
                for y in 1..h {
                    order.push(mesh.node(x, y));
                }
            }
        }
        for x in (1..w).rev() {
            order.push(mesh.node(x, 0));
        }
    }
    HamiltonCycle::from_order(mesh, order)
}

/// The Gray-code Hamiltonian cycle of an n-cube (Table 5.3's construction).
pub fn hypercube_cycle(cube: &Hypercube) -> HamiltonCycle {
    let order = (0..cube.num_nodes()).map(gray_encode).collect();
    HamiltonCycle::from_order(cube, order)
}

/// Finds a Hamiltonian path of an arbitrary topology by backtracking with
/// a fewest-free-neighbors (Warnsdorff-style) heuristic. Exponential in
/// the worst case — intended for small irregular topologies (e.g.
/// `CCC(3)`/`CCC(4)`) whose labeling the closed-form constructions don't
/// cover; §8.1 notes the path-based routing schemes apply to any network
/// with a Hamiltonian path.
pub fn find_path<T: Topology + ?Sized>(topo: &T, start: NodeId) -> Option<Vec<NodeId>> {
    let n = topo.num_nodes();
    let mut path = vec![start];
    let mut used = vec![false; n];
    used[start] = true;
    fn dfs<T: Topology + ?Sized>(topo: &T, path: &mut Vec<NodeId>, used: &mut [bool]) -> bool {
        if path.len() == used.len() {
            return true;
        }
        let last = *path.last().expect("path nonempty");
        let mut options: Vec<NodeId> = topo
            .neighbors(last)
            .into_iter()
            .filter(|&v| !used[v])
            .collect();
        // Warnsdorff: try the most constrained neighbor first.
        options.sort_by_key(|&v| topo.neighbors(v).into_iter().filter(|&w| !used[w]).count());
        for v in options {
            used[v] = true;
            path.push(v);
            if dfs(topo, path, used) {
                return true;
            }
            path.pop();
            used[v] = false;
        }
        false
    }
    dfs(topo, &mut path, &mut used).then_some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_4x4_cycle_matches_table_5_1() {
        // Table 5.1: C = (0,1,2,3,7,6,5,9,10,11,15,14,13,12,8,4,0) and the
        // corresponding h values.
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        let expected_order = [0, 1, 2, 3, 7, 6, 5, 9, 10, 11, 15, 14, 13, 12, 8, 4];
        assert_eq!(c.order(), &expected_order);
        let expected_h: [(usize, usize); 16] = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (7, 5),
            (6, 6),
            (5, 7),
            (9, 8),
            (10, 9),
            (11, 10),
            (15, 11),
            (14, 12),
            (13, 13),
            (12, 14),
            (8, 15),
            (4, 16),
        ];
        for (node, h) in expected_h {
            assert_eq!(c.h(node), h, "h({node})");
            assert_eq!(c.node_at(h), node);
        }
    }

    #[test]
    fn f_matches_table_5_2() {
        // Table 5.2: f values for u0 = 9 in the 4×4 mesh.
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        let expected: [(usize, usize); 16] = [
            (0, 17),
            (1, 18),
            (2, 19),
            (3, 20),
            (4, 16),
            (5, 23),
            (6, 22),
            (7, 21),
            (8, 15),
            (9, 8),
            (10, 9),
            (11, 10),
            (12, 14),
            (13, 13),
            (14, 12),
            (15, 11),
        ];
        for (node, f) in expected {
            assert_eq!(c.f(9, node), f, "f({node})");
        }
    }

    #[test]
    fn cube_cycle_matches_table_5_4_f_values() {
        // Table 5.4: f for u0 = 0011 in a 4-cube.
        let cube = Hypercube::new(4);
        let c = hypercube_cycle(&cube);
        let expected: [(usize, usize); 16] = [
            (0b0000, 17),
            (0b0001, 18),
            (0b0010, 4),
            (0b0011, 3),
            (0b0100, 8),
            (0b0101, 7),
            (0b0110, 5),
            (0b0111, 6),
            (0b1000, 16),
            (0b1001, 15),
            (0b1010, 13),
            (0b1011, 14),
            (0b1100, 9),
            (0b1101, 10),
            (0b1110, 12),
            (0b1111, 11),
        ];
        for (node, f) in expected {
            assert_eq!(c.f(0b0011, node), f, "f({node:04b})");
        }
    }

    #[test]
    fn mesh_cycles_valid_for_various_sizes() {
        for (w, h) in [
            (2, 2),
            (4, 4),
            (6, 6),
            (4, 3),
            (3, 4),
            (8, 8),
            (5, 4),
            (4, 5),
            (2, 7),
        ] {
            let m = Mesh2D::new(w, h);
            let c = mesh2d_cycle(&m);
            assert_eq!(c.len(), m.num_nodes(), "{w}x{h}");
        }
    }

    #[test]
    #[should_panic(expected = "both dimensions odd")]
    fn odd_odd_mesh_has_no_cycle() {
        let _ = mesh2d_cycle(&Mesh2D::new(3, 5));
    }

    #[test]
    fn hypercube_cycles_valid() {
        for dim in 2..=10 {
            let cube = Hypercube::new(dim);
            let c = hypercube_cycle(&cube);
            assert_eq!(c.len(), cube.num_nodes());
        }
    }

    #[test]
    fn f_is_bijective_rotation_for_every_source() {
        let m = Mesh2D::new(4, 4);
        let c = mesh2d_cycle(&m);
        for u0 in 0..16 {
            let mut fs: Vec<usize> = (0..16).map(|x| c.f(u0, x)).collect();
            assert_eq!(c.f(u0, u0), c.h(u0), "source keeps its h value");
            fs.sort_unstable();
            let start = c.h(u0);
            let expect: Vec<usize> = (start..start + 16).collect();
            assert_eq!(fs, expect, "u0={u0}");
        }
    }
}

#[cfg(test)]
mod generic_tests {
    use super::*;
    use crate::ccc::CubeConnectedCycles;
    use crate::labeling::Labeling;

    #[test]
    fn find_path_on_ccc3_gives_a_valid_labeling() {
        let c = CubeConnectedCycles::new(3);
        let path = find_path(&c, 0).expect("CCC(3) is Hamiltonian");
        let l = Labeling::from_path(path);
        assert!(l.is_hamiltonian_path_of(&c));
    }

    #[test]
    fn find_path_on_small_meshes_and_cubes() {
        let m = Mesh2D::new(4, 3);
        let p = find_path(&m, 0).expect("meshes are Hamiltonian from a corner");
        assert_eq!(p.len(), 12);
        let h = Hypercube::new(4);
        let p = find_path(&h, 0).expect("cubes are Hamiltonian");
        assert_eq!(p.len(), 16);
    }
}
