//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`),
//! CSV time series, and a dependency-free JSON validator used by the
//! round-trip tests and CI.
//!
//! The Chrome trace lays the simulation out on two synthetic
//! "processes": pid 0 (*channels*) has one track per channel showing
//! ownership slices (and per-flit slices when
//! [`TraceOptions::flits`] is set), pid 1 (*messages*) has one track
//! per message showing its network lifetime with delivery instants,
//! and pid 2 (*faults & recovery*) carries failure and
//! abort–drain–retry instants. Timestamps are microseconds (the
//! format's unit), converted from the engine's nanoseconds.

use std::collections::HashMap;

use crate::collect::MetricsSnapshot;
use crate::event::SimEvent;
use crate::metrics::json_string;

/// Static labels for a trace: maps the engine's dense ids to names a
/// human can read in the Perfetto track list.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// `channel_names[id]` labels channel `id`'s track, e.g.
    /// `"(1,2)->(1,3) c0"`. Missing entries fall back to `"ch <id>"`.
    pub channel_names: Vec<String>,
}

impl TraceMeta {
    fn channel_name(&self, id: usize) -> String {
        self.channel_names
            .get(id)
            .cloned()
            .unwrap_or_else(|| format!("ch {id}"))
    }
}

/// Knobs for [`chrome_trace`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceOptions {
    /// Emit one slice per flit transfer. Faithful but large — a
    /// 16×16-mesh hot-spot run emits hundreds of thousands of flit
    /// hops; off by default.
    pub flits: bool,
}

const PID_CHANNELS: u32 = 0;
const PID_MESSAGES: u32 = 1;
const PID_CONTROL: u32 = 2;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn complete(name: &str, pid: u32, tid: usize, start_ns: u64, end_ns: u64) -> String {
    format!(
        "{{\"name\": {}, \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \
         \"ts\": {}, \"dur\": {}}}",
        json_string(name),
        us(start_ns),
        us(end_ns.saturating_sub(start_ns))
    )
}

fn instant(name: &str, pid: u32, tid: usize, at_ns: u64) -> String {
    format!(
        "{{\"name\": {}, \"ph\": \"i\", \"pid\": {pid}, \"tid\": {tid}, \
         \"ts\": {}, \"s\": \"t\"}}",
        json_string(name),
        us(at_ns)
    )
}

fn metadata(kind: &str, pid: u32, tid: usize, name: &str) -> String {
    format!(
        "{{\"name\": {}, \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": {}}}}}",
        json_string(kind),
        json_string(name)
    )
}

/// Renders an event log as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`), loadable in Perfetto or
/// `chrome://tracing`.
///
/// Channel-ownership slices open on [`SimEvent::ChannelAcquired`] and
/// close on the matching [`SimEvent::ChannelReleased`]; message
/// lifetime slices open on injection and close on completion or
/// abort. Anything still open when the log ends is closed at the last
/// observed timestamp so partial runs still render.
pub fn chrome_trace(events: &[SimEvent], meta: &TraceMeta, opts: &TraceOptions) -> String {
    let mut out: Vec<String> = vec![
        metadata("process_name", PID_CHANNELS, 0, "channels"),
        metadata("process_name", PID_MESSAGES, 0, "messages"),
        metadata("process_name", PID_CONTROL, 0, "faults & recovery"),
        metadata("thread_name", PID_CONTROL, 0, "events"),
    ];

    let end_ns = events
        .iter()
        .map(|e| match *e {
            SimEvent::FlitHop { end, .. } => end,
            other => other.at(),
        })
        .max()
        .unwrap_or(0);

    // Named tracks for every channel that appears in the log.
    let mut named_channels: Vec<bool> = Vec::new();
    let mut name_channel = |out: &mut Vec<String>, id: usize| {
        if id >= named_channels.len() {
            named_channels.resize(id + 1, false);
        }
        if !named_channels[id] {
            named_channels[id] = true;
            out.push(metadata(
                "thread_name",
                PID_CHANNELS,
                id,
                &meta.channel_name(id),
            ));
        }
    };

    let mut held: HashMap<(usize, usize), u64> = HashMap::new(); // (chan, msg) → acquire ts
    let mut injected: HashMap<usize, (u64, usize)> = HashMap::new(); // msg → (ts, dests)

    for ev in events {
        match *ev {
            SimEvent::MessageInjected {
                at,
                message,
                source,
                worms,
                destinations,
            } => {
                injected.insert(message, (at, destinations));
                out.push(metadata(
                    "thread_name",
                    PID_MESSAGES,
                    message,
                    &format!("msg {message} from n{source}"),
                ));
                out.push(instant(
                    &format!("inject ({worms} worms, {destinations} dests)"),
                    PID_MESSAGES,
                    message,
                    at,
                ));
            }
            SimEvent::ChannelAcquired {
                at,
                channel,
                message,
            } => {
                name_channel(&mut out, channel);
                held.insert((channel, message), at);
            }
            SimEvent::ChannelBlocked {
                at,
                channel,
                message,
            } => {
                name_channel(&mut out, channel);
                out.push(instant(
                    &format!("blocked: msg {message}"),
                    PID_CHANNELS,
                    channel,
                    at,
                ));
            }
            SimEvent::ChannelReleased {
                at,
                channel,
                message,
            } => {
                if let Some(t0) = held.remove(&(channel, message)) {
                    out.push(complete(
                        &format!("msg {message}"),
                        PID_CHANNELS,
                        channel,
                        t0,
                        at,
                    ));
                }
            }
            SimEvent::FlitHop {
                start,
                end,
                channel,
                message,
                flit,
            } => {
                if opts.flits {
                    name_channel(&mut out, channel);
                    out.push(complete(
                        &format!("flit {flit} (msg {message})"),
                        PID_CHANNELS,
                        channel,
                        start,
                        end,
                    ));
                }
            }
            SimEvent::Delivered { at, message, node } => {
                out.push(instant(
                    &format!("deliver n{node}"),
                    PID_MESSAGES,
                    message,
                    at,
                ));
            }
            SimEvent::MessageCompleted { at, message, .. } => {
                if let Some((t0, dests)) = injected.remove(&message) {
                    out.push(complete(
                        &format!("msg {message} ({dests} dests)"),
                        PID_MESSAGES,
                        message,
                        t0,
                        at,
                    ));
                }
            }
            SimEvent::MessageAborted {
                at,
                message,
                delivered,
                pending,
            } => {
                if let Some((t0, _)) = injected.remove(&message) {
                    out.push(complete(
                        &format!("msg {message} ABORTED ({delivered} done, {pending} pending)"),
                        PID_MESSAGES,
                        message,
                        t0,
                        at,
                    ));
                }
            }
            SimEvent::WormStalled { at, message } => {
                out.push(instant(
                    &format!("worm stalled: msg {message}"),
                    PID_CONTROL,
                    0,
                    at,
                ));
            }
            SimEvent::LinkFailed { at, a, b } => {
                out.push(instant(&format!("link {a}-{b} failed"), PID_CONTROL, 0, at));
            }
            SimEvent::NodeFailed { at, node } => {
                out.push(instant(&format!("node {node} failed"), PID_CONTROL, 0, at));
            }
            SimEvent::RecoveryAborted {
                at,
                message,
                attempt,
                reason,
            } => {
                out.push(instant(
                    &format!("abort #{attempt} lmsg {message} ({reason:?})"),
                    PID_CONTROL,
                    0,
                    at,
                ));
            }
            SimEvent::RecoveryRetried {
                at,
                message,
                attempt,
                pending,
            } => {
                out.push(instant(
                    &format!("retry #{attempt} lmsg {message} ({pending} pending)"),
                    PID_CONTROL,
                    0,
                    at,
                ));
            }
            SimEvent::RecoveryDropped {
                at,
                message,
                undelivered,
            } => {
                out.push(instant(
                    &format!("drop lmsg {message} ({undelivered} undelivered)"),
                    PID_CONTROL,
                    0,
                    at,
                ));
            }
            SimEvent::RecoveryCompleted { at, message } => {
                out.push(instant(
                    &format!("recovered lmsg {message}"),
                    PID_CONTROL,
                    0,
                    at,
                ));
            }
        }
    }

    // Close whatever is still open so partial runs render.
    let mut open: Vec<((usize, usize), u64)> = held.into_iter().collect();
    open.sort_unstable();
    for ((channel, message), t0) in open {
        out.push(complete(
            &format!("msg {message} (open)"),
            PID_CHANNELS,
            channel,
            t0,
            end_ns,
        ));
    }
    let mut in_flight: Vec<(usize, (u64, usize))> = injected.into_iter().collect();
    in_flight.sort_unstable();
    for (message, (t0, dests)) in in_flight {
        out.push(complete(
            &format!("msg {message} ({dests} dests, in flight)"),
            PID_MESSAGES,
            message,
            t0,
            end_ns,
        ));
    }

    let mut json = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    json.push_str(&out.join(",\n"));
    json.push_str("\n]}\n");
    json
}

/// Renders per-channel utilization as CSV:
/// `channel,name,busy_ns,blocked_ns,acquires,blocks,releases,flits,utilization`.
pub fn utilization_csv(snap: &MetricsSnapshot, meta: &TraceMeta) -> String {
    let mut out = String::from(
        "channel,name,busy_ns,blocked_ns,acquires,blocks,releases,flits,utilization\n",
    );
    for (i, c) in snap.channels.iter().enumerate() {
        out.push_str(&format!(
            "{i},{},{},{},{},{},{},{},{:.6}\n",
            csv_field(&meta.channel_name(i)),
            c.busy_ns,
            c.blocked_ns,
            c.acquires,
            c.blocks,
            c.releases,
            c.flits,
            snap.utilization(i)
        ));
    }
    out
}

/// Renders message completions as a CSV time series:
/// `completed_at_ns,message,latency_ns`, in completion order.
pub fn latency_csv(events: &[SimEvent]) -> String {
    let mut out = String::from("completed_at_ns,message,latency_ns\n");
    for ev in events {
        if let SimEvent::MessageCompleted {
            at,
            message,
            latency_ns,
        } = *ev
        {
            out.push_str(&format!("{at},{message},{latency_ns}\n"));
        }
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Checks that `s` is one complete, well-formed JSON value.
///
/// A minimal recursive-descent validator (we have no JSON dependency):
/// used by the exporter tests and the CI trace check to guarantee that
/// everything this crate emits actually parses.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|x| x as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|x| x as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => match self.peek() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                        self.i += 1;
                    }
                    Some(b'u') => {
                        self.i += 1;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", self.i)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.i)),
                },
                0x00..=0x1f => return Err(format!("raw control char at byte {}", self.i - 1)),
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > start
        };
        if !digits(self) {
            return Err(format!("expected digits at byte {}", self.i));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("expected fraction digits at byte {}", self.i));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("expected exponent digits at byte {}", self.i));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Metrics;
    use crate::sink::Sink;

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::MessageInjected {
                at: 0,
                message: 0,
                source: 0,
                worms: 2,
                destinations: 3,
            },
            SimEvent::ChannelAcquired {
                at: 0,
                channel: 4,
                message: 0,
            },
            SimEvent::ChannelBlocked {
                at: 100,
                channel: 4,
                message: 1,
            },
            SimEvent::FlitHop {
                start: 0,
                end: 400,
                channel: 4,
                message: 0,
                flit: 0,
            },
            SimEvent::Delivered {
                at: 2000,
                message: 0,
                node: 7,
            },
            SimEvent::ChannelReleased {
                at: 2100,
                channel: 4,
                message: 0,
            },
            SimEvent::MessageCompleted {
                at: 2100,
                message: 0,
                latency_ns: 2100,
            },
            SimEvent::LinkFailed {
                at: 2200,
                a: 1,
                b: 2,
            },
            SimEvent::RecoveryAborted {
                at: 2300,
                message: 1,
                attempt: 1,
                reason: crate::event::AbortCode::Timeout,
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let meta = TraceMeta {
            channel_names: (0..8).map(|i| format!("c{i}")).collect(),
        };
        let json = chrome_trace(&sample_events(), &meta, &TraceOptions { flits: true });
        validate_json(&json).expect("chrome trace must parse");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("flit 0"));
    }

    #[test]
    fn chrome_trace_closes_open_slices() {
        let events = vec![
            SimEvent::MessageInjected {
                at: 0,
                message: 3,
                source: 0,
                worms: 1,
                destinations: 1,
            },
            SimEvent::ChannelAcquired {
                at: 10,
                channel: 1,
                message: 3,
            },
            SimEvent::FlitHop {
                start: 10,
                end: 900,
                channel: 1,
                message: 3,
                flit: 0,
            },
        ];
        let json = chrome_trace(&events, &TraceMeta::default(), &TraceOptions::default());
        validate_json(&json).expect("partial trace must parse");
        assert!(json.contains("in flight"));
        assert!(json.contains("(open)"));
    }

    #[test]
    fn csv_exports_cover_events() {
        let events = sample_events();
        let m = Metrics::new();
        let mut sink = m.clone();
        for e in &events {
            sink.record(e);
        }
        let snap = m.snapshot();
        let util = utilization_csv(&snap, &TraceMeta::default());
        assert!(util.lines().count() >= 2, "header plus channel rows");
        assert!(util.starts_with("channel,name,"));
        let lat = latency_csv(&events);
        assert_eq!(lat.lines().count(), 2);
        assert!(lat.contains("2100,0,2100"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2.5, -3e4, true, null, \"x\\n\"]}").unwrap();
        validate_json("[]").unwrap();
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("01").is_ok(), "leading zeros tolerated");
    }
}
