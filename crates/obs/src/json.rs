//! A dependency-free JSON value tree: the parse/serialize counterpart of
//! [`crate::export::validate_json`].
//!
//! The exporters in this crate only ever *emit* JSON; the experiment-spec
//! pipeline (`mcast-workload::spec`) also needs to *read* it back, so this
//! module provides a small [`Json`] value with a recursive-descent parser
//! (same grammar the validator accepts) and a canonical serializer.
//! Canonical means: object keys keep their written order, numbers render
//! via [`fmt_number`], and nesting is two-space indented — so a
//! value → text → value → text round trip is byte-identical.

use std::collections::BTreeMap;

use crate::metrics::json_string;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for canonical output.
    Obj(Vec<(String, Json)>),
}

/// Formats a number the canonical way: integers without a fraction
/// (`42`, not `42.0`), everything else via the shortest `f64` display.
pub fn fmt_number(x: f64) -> String {
    if x.is_finite() && x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.is_finite() {
        format!("{x}")
    } else {
        // JSON has no Infinity/NaN; callers must encode those as null
        // before serialization. Emitting null here keeps output parseable.
        "null".to_string()
    }
}

impl Json {
    /// Parses one complete JSON value from `s`.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Serializes canonically (two-space indent, key order preserved).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&fmt_number(*x)),
            Json::Str(s) => out.push_str(&json_string(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad);
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str(&json_string(k));
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys, for unknown-field validation.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<BTreeMap<String, Json>> for Json {
    fn from(m: BTreeMap<String, Json>) -> Json {
        Json::Obj(m.into_iter().collect())
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|x| x as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|x| x as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => match self.peek() {
                    Some(b'"') => {
                        out.push('"');
                        self.i += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        self.i += 1;
                    }
                    Some(b'/') => {
                        out.push('/');
                        self.i += 1;
                    }
                    Some(b'b') => {
                        out.push('\u{0008}');
                        self.i += 1;
                    }
                    Some(b'f') => {
                        out.push('\u{000c}');
                        self.i += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        self.i += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        self.i += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        self.i += 1;
                    }
                    Some(b'u') => {
                        self.i += 1;
                        let mut code = 0u32;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => {
                                    code = code * 16 + (h as char).to_digit(16).unwrap();
                                    self.i += 1;
                                }
                                _ => return Err(format!("bad \\u escape at byte {}", self.i)),
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", self.i)),
                },
                0x00..=0x1f => return Err(format!("raw control char at byte {}", self.i - 1)),
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let width = utf8_width(c);
                    self.i = (start + width).min(self.b.len());
                    match std::str::from_utf8(&self.b[start..self.i]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(format!("invalid UTF-8 at byte {start}")),
                    }
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(format!("expected digits at byte {}", self.i));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(format!("expected fraction digits at byte {}", self.i));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(format!("expected exponent digits at byte {}", self.i));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("unparseable number at byte {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;

    #[test]
    fn parse_and_serialize_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::from("fig7_10")),
            ("loads".into(), Json::Arr(vec![600.0.into(), 450.0.into()])),
            ("reps".into(), Json::from(3usize)),
            ("uniform".into(), Json::from(true)),
            ("note".into(), Json::Null),
        ]);
        let text = v.to_json();
        validate_json(&text).expect("canonical output must validate");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Byte-identical on the second lap.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\nbA\"q\"", "x": [1.5, -2e3, 7]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\nbA\"q\"");
        let xs = v.get("x").unwrap().as_arr().unwrap();
        assert_eq!(xs[0].as_num(), Some(1.5));
        assert_eq!(xs[1].as_num(), Some(-2000.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} junk").is_err());
    }

    #[test]
    fn number_formatting_is_stable() {
        assert_eq!(fmt_number(42.0), "42");
        assert_eq!(fmt_number(0.05), "0.05");
        assert_eq!(fmt_number(-3.0), "-3");
        assert_eq!(fmt_number(600000.0), "600000");
    }
}
