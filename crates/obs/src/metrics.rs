//! The metrics registry: counters, gauges, log-bucketed histograms and
//! Welford summaries, addressable by name and exportable as one JSON
//! snapshot.
//!
//! [`Histogram`] is the latency workhorse: log₂ octaves with 8 linear
//! sub-buckets each (HdrHistogram-style), so any `u64` sample lands in
//! one of ~500 buckets with ≤ 12.5 % relative error on quantiles while
//! `record` stays a few shifts — cheap enough for per-flit use.
//! [`Summary`] is the exact running mean/variance accumulator
//! (Welford) that `mcast-workload`'s batch-means statistics wrap.

use std::collections::BTreeMap;

/// Linear sub-bucket bits per octave (8 sub-buckets).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count for 64-bit values.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Adds `by` to the count.
    pub fn inc(&mut self, by: u64) {
        self.0 += by;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(pub f64);

impl Gauge {
    /// Sets the value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// A log-bucketed histogram of `u64` samples (nanoseconds, counts, …).
///
/// ```
/// use mcast_obs::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=600).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB - 1);
    ((msb - SUB_BITS + 1) as usize) * SUB + sub
}

/// Lower bound of a bucket (inverse of [`bucket_of`]).
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx / SUB) as u32 + SUB_BITS - 1;
    let sub = (idx % SUB) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The approximate `q`-quantile (`0.0 ..= 1.0`): the lower bound of
    /// the bucket holding the rank, clamped to the exact min/max. The
    /// bucketing error is at most one sub-bucket (≤ 12.5 %).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q.max(0.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (approximate).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (approximate).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (approximate).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact running mean/variance (Welford), with min/max.
///
/// This is the single source of truth for sample statistics:
/// `mcast_workload::stats::Accumulator` is a thin wrapper adding the
/// Student-t confidence interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 below two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Folds another summary into this one (Chan et al.'s pairwise
    /// Welford combine). Merging is deterministic: merging the same
    /// summaries in the same order always produces bit-identical state,
    /// which is what lets the parallel sweep runner reduce per-task
    /// summaries in task order and match a serial reduction exactly.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let d = other.mean - self.mean;
        let n = na + nb;
        self.mean += d * (nb / n);
        self.m2 += other.m2 + d * d * (na * nb / n);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n += other.n;
    }
}

/// One named metric in a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(Counter),
    /// Instantaneous value.
    Gauge(Gauge),
    /// Log-bucketed distribution.
    Histogram(Histogram),
    /// Exact mean/variance summary.
    Summary(Summary),
}

/// A named collection of metrics with a JSON snapshot.
///
/// Names are free-form; the convention is dotted paths
/// (`engine.flits`, `latency.ns`, `channel.busy_ns`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    items: BTreeMap<String, MetricValue>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, by: u64) {
        match self
            .items
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(Counter::default()))
        {
            MetricValue::Counter(c) => c.inc(by),
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Sets a gauge, creating it if needed.
    pub fn set(&mut self, name: &str, v: f64) {
        match self
            .items
            .entry(name.to_string())
            .or_insert(MetricValue::Gauge(Gauge::default()))
        {
            MetricValue::Gauge(g) => g.set(v),
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Records a histogram sample, creating the histogram if needed.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self
            .items
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(h) => h.record(v),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Pushes a summary sample, creating the summary if needed.
    pub fn push(&mut self, name: &str, v: f64) {
        match self
            .items
            .entry(name.to_string())
            .or_insert(MetricValue::Summary(Summary::default()))
        {
            MetricValue::Summary(s) => s.push(v),
            other => panic!("metric {name:?} is not a summary: {other:?}"),
        }
    }

    /// Installs a pre-built histogram wholesale (e.g. one accumulated
    /// by the [`Metrics`](crate::collect::Metrics) sink), replacing any
    /// existing entry under that name.
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.items
            .insert(name.to_string(), MetricValue::Histogram(h));
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.items.get(name)
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.items.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the whole registry as a JSON object, one key per metric.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  {}: ", json_string(name)));
            out.push_str(&metric_json(v));
        }
        out.push_str("\n}");
        out
    }
}

fn metric_json(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => {
            format!("{{\"type\": \"counter\", \"value\": {}}}", c.get())
        }
        MetricValue::Gauge(g) => {
            format!("{{\"type\": \"gauge\", \"value\": {}}}", json_f64(g.get()))
        }
        MetricValue::Histogram(h) => format!(
            "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"mean\": {}, \
             \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
            h.count(),
            h.sum(),
            json_f64(h.mean()),
            h.min(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.max()
        ),
        MetricValue::Summary(s) => format!(
            "{{\"type\": \"summary\", \"count\": {}, \"mean\": {}, \"stddev\": {}, \
             \"min\": {}, \"max\": {}}}",
            s.count(),
            json_f64(s.mean()),
            json_f64(s.stddev()),
            json_f64(s.min()),
            json_f64(s.max())
        ),
    }
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a string for JSON.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_merge_matches_single_pass_statistics() {
        let xs: Vec<f64> = (0..40).map(|i| ((i * 37) % 19) as f64 - 7.5).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.push(x);
        }
        // Split into uneven parts, merge in order.
        let mut merged = Summary::new();
        for part in [&xs[..3], &xs[3..17], &xs[17..17], &xs[17..]] {
            let mut s = Summary::new();
            for &x in part {
                s.push(x);
            }
            merged.merge(&s);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_is_deterministic() {
        let mk = |lo: u64, hi: u64| {
            let mut s = Summary::new();
            for i in lo..hi {
                s.push((i as f64).sin() * 100.0);
            }
            s
        };
        let parts = [mk(0, 11), mk(11, 30), mk(30, 31), mk(31, 64)];
        let fold = || {
            let mut acc = Summary::new();
            for p in &parts {
                acc.merge(p);
            }
            acc
        };
        // Same order → bit-identical result (f64 equality, not epsilon).
        assert_eq!(fold(), fold());
    }

    #[test]
    fn bucket_roundtrip_is_monotone() {
        let mut last = 0usize;
        for v in [0u64, 1, 7, 8, 9, 100, 1000, 1 << 20, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
            last = b;
        }
        // Floor of the bucket of a floor is itself (fixed point).
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_floor(idx)), idx);
        }
    }

    #[test]
    fn histogram_quantiles_track_uniform_stream() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.quantile(1.0), 10_000, "q=1 is exact");
        let p50 = h.p50();
        assert!(
            (4000..=5700).contains(&p50),
            "p50 {p50} off for uniform 1..=10000"
        );
        let p99 = h.p99();
        assert!((8700..=10_000).contains(&p99), "p99 {p99}");
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.124), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_merge_sums() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn summary_matches_welford() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn registry_json_is_valid() {
        let mut r = Registry::new();
        r.inc("engine.flits", 42);
        r.set("util.max", 0.73);
        r.observe("latency.ns", 1234);
        r.observe("latency.ns", 99_999);
        r.push("traffic", 4.0);
        let json = r.to_json();
        crate::export::validate_json(&json).expect("registry snapshot must be valid JSON");
        assert!(json.contains("\"engine.flits\""));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn registry_kind_mismatch_panics() {
        let mut r = Registry::new();
        r.set("x", 1.0);
        r.inc("x", 1);
    }
}
