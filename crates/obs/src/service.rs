//! Service-level metrics for the `mcast serve` job-execution service
//! (DESIGN.md §13).
//!
//! The simulator-side metrics in [`crate::collect`] describe one run;
//! this module describes the *service* wrapped around many runs: how
//! many jobs were accepted, shed, retried, completed or failed, how many
//! are in flight right now, and the job-latency distribution. The
//! counters deliberately mirror the journal's ledger so an exported
//! snapshot can be checked against the invariant
//! `accepted = completed + failed + shed`.

use crate::metrics::{Histogram, Registry};

/// Counters, gauges and the job-latency histogram of one server.
///
/// Plain mutable state — the server owns one behind its own lock, and
/// [`ServiceMetrics::to_registry`] snapshots it into a named
/// [`Registry`] for JSON export.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Submissions received (every one of them, shed included).
    pub accepted: u64,
    /// Jobs that produced a result (fresh run or cache hit).
    pub completed: u64,
    /// Jobs that exhausted their retry budget or failed permanently,
    /// with a recorded diagnostic.
    pub failed: u64,
    /// Submissions refused by admission control (`Overloaded`).
    pub shed: u64,
    /// Retry attempts scheduled (transient failures that got another
    /// try; a job retried twice counts twice).
    pub retried: u64,
    /// Completions served straight from the result cache.
    pub cache_hits: u64,
    /// Jobs currently being executed by workers.
    pub running: u64,
    /// Jobs accepted and waiting for a worker.
    pub queued: u64,
    /// Wall-clock job latency (accept → terminal state), in
    /// microseconds — log-bucketed, so `p50`/`p99` are cheap.
    pub job_latency_us: Histogram,
}

impl ServiceMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one terminal job latency (µs).
    pub fn observe_latency_us(&mut self, us: u64) {
        self.job_latency_us.record(us);
    }

    /// Whether the terminal counters balance the accepted count —
    /// the service-side mirror of the journal's ledger invariant.
    pub fn balanced(&self) -> bool {
        self.accepted == self.completed + self.failed + self.shed
    }

    /// Snapshots into a [`Registry`] under dotted `service.*` names
    /// (the same naming scheme the simulator metrics use), ready for
    /// [`Registry::to_json`].
    pub fn to_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.inc("service.jobs.accepted", self.accepted);
        reg.inc("service.jobs.completed", self.completed);
        reg.inc("service.jobs.failed", self.failed);
        reg.inc("service.jobs.shed", self.shed);
        reg.inc("service.jobs.retried", self.retried);
        reg.inc("service.jobs.cache_hits", self.cache_hits);
        reg.set("service.jobs.running", self.running as f64);
        reg.set("service.jobs.queued", self.queued as f64);
        reg.insert_histogram("service.job_latency_us", self.job_latency_us.clone());
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balance_tracks_counters() {
        let mut m = ServiceMetrics::new();
        assert!(m.balanced(), "empty ledger balances");
        m.accepted = 5;
        assert!(!m.balanced());
        m.completed = 3;
        m.failed = 1;
        m.shed = 1;
        assert!(m.balanced());
    }

    #[test]
    fn registry_snapshot_carries_all_series() {
        let mut m = ServiceMetrics::new();
        m.accepted = 4;
        m.completed = 2;
        m.failed = 1;
        m.shed = 1;
        m.retried = 3;
        m.running = 2;
        m.queued = 7;
        m.observe_latency_us(1_000);
        m.observe_latency_us(9_000);
        let reg = m.to_registry();
        let json = reg.to_json();
        for name in [
            "service.jobs.accepted",
            "service.jobs.completed",
            "service.jobs.failed",
            "service.jobs.shed",
            "service.jobs.retried",
            "service.jobs.cache_hits",
            "service.jobs.running",
            "service.jobs.queued",
            "service.job_latency_us",
        ] {
            assert!(reg.get(name).is_some(), "missing {name}");
            assert!(json.contains(name), "JSON missing {name}");
        }
        crate::validate_json(&json).expect("snapshot JSON validates");
        assert_eq!(m.job_latency_us.count(), 2);
        assert!(m.job_latency_us.p99() >= m.job_latency_us.p50());
    }
}
