//! The online metrics collector: a [`Sink`] that folds the event stream
//! into per-channel utilization, blocked-time, and latency histograms
//! as the simulation runs — no event log retained.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::event::SimEvent;
use crate::metrics::{Histogram, Registry};
use crate::sink::Sink;

/// Aggregates for one channel of the simulated fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Time the channel spent transferring flits (ns).
    pub busy_ns: u64,
    /// Time requests spent queued on this channel (ns) — the
    /// contention signal; can exceed elapsed time when several worms
    /// queue at once.
    pub blocked_ns: u64,
    /// Grants.
    pub acquires: u64,
    /// Requests that had to queue.
    pub blocks: u64,
    /// Releases.
    pub releases: u64,
    /// Flits transferred.
    pub flits: u64,
}

#[derive(Debug, Default)]
struct State {
    end_ns: u64,
    channels: Vec<ChannelStats>,
    /// Open blocked intervals: (channel, message) → enqueue time.
    blocked_since: HashMap<(usize, usize), u64>,
    latency_ns: Histogram,
    injected: u64,
    completed: u64,
    aborted: u64,
    delivered: u64,
    stalls: u64,
    flits: u64,
    link_failures: u64,
    node_failures: u64,
    recovery_aborts: u64,
    recovery_retries: u64,
    recovery_drops: u64,
    recovery_completions: u64,
}

impl State {
    fn chan(&mut self, id: usize) -> &mut ChannelStats {
        if id >= self.channels.len() {
            self.channels.resize(id + 1, ChannelStats::default());
        }
        &mut self.channels[id]
    }

    fn close_blocked(&mut self, channel: usize, message: usize, at: u64) {
        if let Some(t0) = self.blocked_since.remove(&(channel, message)) {
            self.chan(channel).blocked_ns += at.saturating_sub(t0);
        }
    }

    fn close_all_blocked_of(&mut self, message: usize, at: u64) {
        let open: Vec<(usize, usize)> = self
            .blocked_since
            .keys()
            .filter(|&&(_, m)| m == message)
            .copied()
            .collect();
        for (c, m) in open {
            self.close_blocked(c, m, at);
        }
    }

    fn fold(&mut self, ev: &SimEvent) {
        self.end_ns = self.end_ns.max(match *ev {
            SimEvent::FlitHop { end, .. } => end,
            other => other.at(),
        });
        match *ev {
            SimEvent::MessageInjected { .. } => self.injected += 1,
            SimEvent::ChannelAcquired {
                at,
                channel,
                message,
            } => {
                self.chan(channel).acquires += 1;
                self.close_blocked(channel, message, at);
            }
            SimEvent::ChannelBlocked {
                at,
                channel,
                message,
            } => {
                self.chan(channel).blocks += 1;
                self.blocked_since.insert((channel, message), at);
            }
            SimEvent::ChannelReleased { channel, .. } => self.chan(channel).releases += 1,
            SimEvent::FlitHop {
                start,
                end,
                channel,
                ..
            } => {
                let c = self.chan(channel);
                c.busy_ns += end - start;
                c.flits += 1;
                self.flits += 1;
            }
            SimEvent::Delivered { .. } => self.delivered += 1,
            SimEvent::MessageCompleted {
                at,
                message,
                latency_ns,
            } => {
                self.completed += 1;
                self.latency_ns.record(latency_ns);
                self.close_all_blocked_of(message, at);
            }
            SimEvent::MessageAborted { at, message, .. } => {
                self.aborted += 1;
                self.close_all_blocked_of(message, at);
            }
            SimEvent::WormStalled { .. } => self.stalls += 1,
            SimEvent::LinkFailed { .. } => self.link_failures += 1,
            SimEvent::NodeFailed { .. } => self.node_failures += 1,
            SimEvent::RecoveryAborted { .. } => self.recovery_aborts += 1,
            SimEvent::RecoveryRetried { .. } => self.recovery_retries += 1,
            SimEvent::RecoveryDropped { .. } => self.recovery_drops += 1,
            SimEvent::RecoveryCompleted { .. } => self.recovery_completions += 1,
        }
    }
}

/// A point-in-time copy of everything the collector aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Latest event timestamp seen (ns) — the utilization denominator.
    pub end_ns: u64,
    /// Per-channel aggregates, indexed by the engine's channel id.
    /// Channels that never saw an event hold zeroes.
    pub channels: Vec<ChannelStats>,
    /// Message network latency, in nanoseconds.
    pub latency_ns: Histogram,
    /// Messages injected.
    pub injected: u64,
    /// Messages fully delivered.
    pub completed: u64,
    /// Messages aborted out of the network.
    pub aborted: u64,
    /// Destination deliveries.
    pub delivered: u64,
    /// Worms stalled on all-dead hops.
    pub stalls: u64,
    /// Flits transferred across all channels.
    pub flits: u64,
    /// Link failures observed.
    pub link_failures: u64,
    /// Node failures observed.
    pub node_failures: u64,
    /// Recovery watchdog aborts.
    pub recovery_aborts: u64,
    /// Recovery re-injections.
    pub recovery_retries: u64,
    /// Recovery drops (budget exhausted).
    pub recovery_drops: u64,
    /// Recovery logical-message completions.
    pub recovery_completions: u64,
}

impl MetricsSnapshot {
    /// Utilization of one channel over the observed span (`0.0..=1.0`;
    /// 0 when nothing was observed).
    pub fn utilization(&self, channel: usize) -> f64 {
        if self.end_ns == 0 {
            return 0.0;
        }
        self.channels
            .get(channel)
            .map_or(0.0, |c| c.busy_ns as f64 / self.end_ns as f64)
    }

    /// Folds the snapshot into a named [`Registry`] (the `mcast
    /// metrics` / JSON-snapshot surface).
    pub fn to_registry(&self) -> Registry {
        let mut r = Registry::new();
        r.inc("messages.injected", self.injected);
        r.inc("messages.completed", self.completed);
        r.inc("messages.aborted", self.aborted);
        r.inc("messages.delivered_destinations", self.delivered);
        r.inc("engine.flits", self.flits);
        r.inc("engine.worm_stalls", self.stalls);
        r.inc("faults.link_failures", self.link_failures);
        r.inc("faults.node_failures", self.node_failures);
        r.inc("recovery.aborts", self.recovery_aborts);
        r.inc("recovery.retries", self.recovery_retries);
        r.inc("recovery.drops", self.recovery_drops);
        r.inc("recovery.completed", self.recovery_completions);
        r.set("time.end_ns", self.end_ns as f64);
        let mut busy = 0u64;
        let mut blocked = 0u64;
        let mut acquires = 0u64;
        let mut blocks = 0u64;
        let mut peak = 0.0f64;
        for (i, c) in self.channels.iter().enumerate() {
            busy += c.busy_ns;
            blocked += c.blocked_ns;
            acquires += c.acquires;
            blocks += c.blocks;
            peak = peak.max(self.utilization(i));
        }
        r.inc("channels.busy_ns", busy);
        r.inc("channels.blocked_ns", blocked);
        r.inc("channels.acquires", acquires);
        r.inc("channels.blocks", blocks);
        r.set("channels.peak_utilization", peak);
        if self.end_ns > 0 && !self.channels.is_empty() {
            r.set(
                "channels.mean_utilization",
                busy as f64 / self.end_ns as f64 / self.channels.len() as f64,
            );
        }
        r.insert_histogram("latency.ns", self.latency_ns.clone());
        r
    }
}

/// The shared-handle metrics sink: clone one handle into the engine,
/// keep the other to [`snapshot`](Metrics::snapshot) after the run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    state: Arc<Mutex<State>>,
}

impl Metrics {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out the current aggregates. Open blocked intervals are
    /// charged up to the latest observed time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = self.state.lock().expect("metrics lock");
        let mut channels = s.channels.clone();
        let end = s.end_ns;
        for (&(c, _), &t0) in &s.blocked_since {
            if c >= channels.len() {
                channels.resize(c + 1, ChannelStats::default());
            }
            channels[c].blocked_ns += end.saturating_sub(t0);
        }
        MetricsSnapshot {
            end_ns: end,
            channels,
            latency_ns: s.latency_ns.clone(),
            injected: s.injected,
            completed: s.completed,
            aborted: s.aborted,
            delivered: s.delivered,
            stalls: s.stalls,
            flits: s.flits,
            link_failures: s.link_failures,
            node_failures: s.node_failures,
            recovery_aborts: s.recovery_aborts,
            recovery_retries: s.recovery_retries,
            recovery_drops: s.recovery_drops,
            recovery_completions: s.recovery_completions,
        }
    }
}

impl Sink for Metrics {
    fn record(&mut self, ev: &SimEvent) {
        self.state.lock().expect("metrics lock").fold(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(events: &[SimEvent]) -> MetricsSnapshot {
        let m = Metrics::new();
        let mut sink = m.clone();
        for e in events {
            sink.record(e);
        }
        m.snapshot()
    }

    #[test]
    fn busy_and_utilization_accumulate() {
        let snap = feed(&[
            SimEvent::FlitHop {
                start: 0,
                end: 400,
                channel: 2,
                message: 0,
                flit: 0,
            },
            SimEvent::FlitHop {
                start: 400,
                end: 800,
                channel: 2,
                message: 0,
                flit: 1,
            },
            SimEvent::FlitHop {
                start: 0,
                end: 1000,
                channel: 0,
                message: 1,
                flit: 0,
            },
        ]);
        assert_eq!(snap.flits, 3);
        assert_eq!(snap.channels[2].busy_ns, 800);
        assert_eq!(snap.channels[2].flits, 2);
        assert_eq!(snap.end_ns, 1000);
        assert!((snap.utilization(2) - 0.8).abs() < 1e-12);
        assert_eq!(snap.utilization(7), 0.0, "unknown channel is idle");
    }

    #[test]
    fn blocked_interval_closes_on_acquire() {
        let snap = feed(&[
            SimEvent::ChannelBlocked {
                at: 100,
                channel: 3,
                message: 5,
            },
            SimEvent::ChannelAcquired {
                at: 600,
                channel: 3,
                message: 5,
            },
        ]);
        assert_eq!(snap.channels[3].blocked_ns, 500);
        assert_eq!(snap.channels[3].blocks, 1);
        assert_eq!(snap.channels[3].acquires, 1);
    }

    #[test]
    fn open_blocked_interval_charged_to_snapshot_end() {
        let snap = feed(&[
            SimEvent::ChannelBlocked {
                at: 100,
                channel: 1,
                message: 0,
            },
            SimEvent::FlitHop {
                start: 0,
                end: 1100,
                channel: 0,
                message: 9,
                flit: 0,
            },
        ]);
        assert_eq!(snap.channels[1].blocked_ns, 1000);
    }

    #[test]
    fn abort_closes_blocked_intervals() {
        let snap = feed(&[
            SimEvent::ChannelBlocked {
                at: 0,
                channel: 1,
                message: 7,
            },
            SimEvent::MessageAborted {
                at: 250,
                message: 7,
                delivered: 0,
                pending: 2,
            },
        ]);
        assert_eq!(snap.channels[1].blocked_ns, 250);
        assert_eq!(snap.aborted, 1);
    }

    #[test]
    fn latency_histogram_and_registry_json() {
        let snap = feed(&[
            SimEvent::MessageInjected {
                at: 0,
                message: 0,
                source: 0,
                worms: 1,
                destinations: 2,
            },
            SimEvent::MessageCompleted {
                at: 9000,
                message: 0,
                latency_ns: 9000,
            },
        ]);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.latency_ns.count(), 1);
        assert_eq!(snap.latency_ns.max(), 9000);
        let reg = snap.to_registry();
        crate::export::validate_json(&reg.to_json()).expect("valid JSON");
        assert!(reg.get("latency.ns").is_some());
    }
}
