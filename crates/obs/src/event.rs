//! Typed simulation events.
//!
//! Every event carries plain ids (`usize` message/channel/node ids,
//! `u64` nanosecond timestamps) so this crate stays dependency-free.
//! The id spaces are the emitting engine's: `channel` indexes its
//! channel table, `message` is the engine [`MessageId`], and recovery
//! events carry the supervisor's *logical* message index (one logical
//! message spans several engine incarnations across retries).
//!
//! [`MessageId`]: https://docs.rs/mcast-sim

/// Why a supervised message was torn out of the network — the
/// dependency-free mirror of the recovery layer's `AbortReason`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCode {
    /// The per-message delivery deadline expired.
    Timeout,
    /// The engine wedged and this message was picked from the wait-for
    /// cycle.
    Deadlock,
    /// A channel failure severed the worm (or every copy of a hop died).
    Broken,
}

/// One observable simulator transition, timestamped in simulated
/// nanoseconds. All variants are `Copy`: recording an event never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A multicast message entered the network.
    MessageInjected {
        /// Injection time.
        at: u64,
        /// Engine message id.
        message: usize,
        /// Source node.
        source: usize,
        /// Worms the plan spawned.
        worms: usize,
        /// Destination count.
        destinations: usize,
    },
    /// A worm was granted a channel (its header owns the wire).
    ChannelAcquired {
        /// Grant time.
        at: u64,
        /// Channel id in the engine's table.
        channel: usize,
        /// Owning message.
        message: usize,
    },
    /// A worm's channel request queued behind a busy channel — the
    /// start of a blocked interval.
    ChannelBlocked {
        /// Enqueue time.
        at: u64,
        /// The channel whose queue holds the request.
        channel: usize,
        /// Requesting message.
        message: usize,
    },
    /// A worm released a channel (tail crossed, or the worm aborted).
    ChannelReleased {
        /// Release time.
        at: u64,
        /// Channel id.
        channel: usize,
        /// The message that owned it.
        message: usize,
    },
    /// One flit crossed one channel: the innermost quantum of work.
    FlitHop {
        /// Transfer start time.
        start: u64,
        /// Transfer completion time (`start + flit_time`, plus the
        /// routing delay for headers).
        end: u64,
        /// Channel crossed.
        channel: usize,
        /// Owning message.
        message: usize,
        /// Flit index within the message (0 = header).
        flit: u32,
    },
    /// A destination received its tail flit.
    Delivered {
        /// Delivery time.
        at: u64,
        /// Message id.
        message: usize,
        /// The destination node.
        node: usize,
    },
    /// Every destination of a message has been delivered.
    MessageCompleted {
        /// Completion time (last destination's tail).
        at: u64,
        /// Message id.
        message: usize,
        /// Network latency (completion minus injection).
        latency_ns: u64,
    },
    /// A message was torn out of the network by `abort_message`.
    MessageAborted {
        /// Abort time.
        at: u64,
        /// Message id.
        message: usize,
        /// Destinations that had finished before the abort.
        delivered: usize,
        /// Destinations still pending (the retry set).
        pending: usize,
    },
    /// A worm found every copy of a needed hop dead: it can never
    /// advance without recovery intervention.
    WormStalled {
        /// Detection time.
        at: u64,
        /// Owning message.
        message: usize,
    },
    /// A physical link failed (both directions, all classes).
    LinkFailed {
        /// Failure time.
        at: u64,
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A node failed (every incident link died).
    NodeFailed {
        /// Failure time.
        at: u64,
        /// The failed node.
        node: usize,
    },
    /// Recovery: the watchdog aborted a logical message (the *abort* of
    /// abort–drain–retry).
    RecoveryAborted {
        /// Abort time.
        at: u64,
        /// Logical message index.
        message: usize,
        /// Aborts of this message so far (1 = first).
        attempt: u32,
        /// What triggered the abort.
        reason: AbortCode,
    },
    /// Recovery: a logical message was re-planned and re-injected after
    /// its backoff (the *retry*).
    RecoveryRetried {
        /// Re-injection time.
        at: u64,
        /// Logical message index.
        message: usize,
        /// Abort count preceding this retry.
        attempt: u32,
        /// Destinations still pending in the retry plan.
        pending: usize,
    },
    /// Recovery: a logical message exhausted its budget and gave up.
    RecoveryDropped {
        /// Drop time.
        at: u64,
        /// Logical message index.
        message: usize,
        /// Destinations never delivered.
        undelivered: usize,
    },
    /// Recovery: every destination of a logical message was delivered.
    RecoveryCompleted {
        /// Completion time.
        at: u64,
        /// Logical message index.
        message: usize,
    },
}

impl SimEvent {
    /// The event's timestamp (for [`SimEvent::FlitHop`], the start).
    pub fn at(&self) -> u64 {
        match *self {
            SimEvent::MessageInjected { at, .. }
            | SimEvent::ChannelAcquired { at, .. }
            | SimEvent::ChannelBlocked { at, .. }
            | SimEvent::ChannelReleased { at, .. }
            | SimEvent::Delivered { at, .. }
            | SimEvent::MessageCompleted { at, .. }
            | SimEvent::MessageAborted { at, .. }
            | SimEvent::WormStalled { at, .. }
            | SimEvent::LinkFailed { at, .. }
            | SimEvent::NodeFailed { at, .. }
            | SimEvent::RecoveryAborted { at, .. }
            | SimEvent::RecoveryRetried { at, .. }
            | SimEvent::RecoveryDropped { at, .. }
            | SimEvent::RecoveryCompleted { at, .. } => at,
            SimEvent::FlitHop { start, .. } => start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // The hot path constructs these unconditionally cheap.
        assert!(std::mem::size_of::<SimEvent>() <= 48);
        let e = SimEvent::FlitHop {
            start: 1,
            end: 2,
            channel: 3,
            message: 4,
            flit: 0,
        };
        let f = e; // Copy
        assert_eq!(e, f);
        assert_eq!(e.at(), 1);
    }
}
