//! Observability for the wormhole simulator (DESIGN.md §9).
//!
//! The engine computes every quantity the Chapter 7 evaluation rests on
//! (channel traffic, message latency, contention) but historically only
//! exposed terminal-state statistics. This crate is the measurement
//! layer in between:
//!
//! * [`event`] — the typed simulation events (flit hops, channel
//!   acquire/block/release, worm inject/deliver/abort, recovery
//!   abort–drain–retry transitions);
//! * [`sink`] — the [`Sink`] trait the engine emits into, with a no-op
//!   default, an event [`Recording`], a [`Metrics`] collector and a
//!   [`Tee`] combinator;
//! * [`metrics`] — counters, gauges, log-bucketed latency histograms
//!   (p50/p90/p99/max) and a Welford [`Summary`], grouped in a named
//!   [`Registry`] with a JSON snapshot;
//! * [`collect`] — the online [`Metrics`] sink: per-channel busy and
//!   blocked time, latency histograms, flit/abort/recovery counters;
//! * [`export`] — Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`), CSV time series, and a dependency-free JSON
//!   validator for round-trip checks;
//! * [`json`] — a dependency-free JSON value tree ([`Json`]) with a
//!   recursive-descent parser and canonical serializer, used by the
//!   experiment-spec pipeline for reproducible run artifacts.
//!
//! The contract with the engine: instrumentation is *opt-in* and must
//! never perturb simulation results. A sink only observes — the engine
//! emits events after its own state transitions, and the determinism
//! property tests (`tests/observability.rs`) prove a recorded run is
//! bit-identical to an unrecorded one.
//!
//! This crate deliberately depends on nothing: events carry plain
//! `usize`/`u64` ids so `mcast-sim`, `mcast-workload`, `mcast-bench` and
//! the CLI can all speak it without cycles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collect;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod service;
pub mod sink;

pub use collect::{ChannelStats, Metrics, MetricsSnapshot};
pub use event::{AbortCode, SimEvent};
pub use export::{
    chrome_trace, latency_csv, utilization_csv, validate_json, TraceMeta, TraceOptions,
};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricValue, Registry, Summary};
pub use service::ServiceMetrics;
pub use sink::{NullSink, Recording, Sink, Tee};
