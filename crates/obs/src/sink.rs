//! The [`Sink`] contract and the stock implementations.
//!
//! A sink *observes*: the engine calls [`Sink::record`] after its own
//! state transition is complete, and nothing a sink does can flow back
//! into the simulation. Implementations must be cheap — the engine may
//! call `record` once per flit transfer.
//!
//! [`Recording`] and [`Metrics`](crate::collect::Metrics) are shared
//! *handles* (`Arc<Mutex<…>>`): clone one into the engine, keep the
//! other to read the data back after the run. The lock is uncontended
//! (the engine is single-threaded), so the cost is one atomic per
//! event — and zero when no sink is installed.

use std::sync::{Arc, Mutex};

use crate::event::SimEvent;

/// Receives simulation events. `Send` so an instrumented engine can
/// still move across threads.
pub trait Sink: Send {
    /// Observes one event. Must not panic on any event sequence.
    fn record(&mut self, ev: &SimEvent);
}

/// The no-op sink: every event is dropped. Installing it is equivalent
/// to (but measurably distinct from) installing nothing — useful for
/// overhead A/B tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _ev: &SimEvent) {}
}

/// Records every event into a shared in-memory log, in emission order.
///
/// ```
/// use mcast_obs::{Recording, Sink, SimEvent};
/// let rec = Recording::new();
/// let mut sink = rec.clone(); // clone goes into the engine
/// sink.record(&SimEvent::Delivered { at: 5, message: 0, node: 9 });
/// assert_eq!(rec.len(), 1);
/// assert_eq!(rec.events()[0].at(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recording {
    events: Arc<Mutex<Vec<SimEvent>>>,
}

impl Recording {
    /// Creates an empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the recorded events so far.
    pub fn events(&self) -> Vec<SimEvent> {
        self.events.lock().expect("recording lock").clone()
    }

    /// Drains the recorded events, leaving the log empty.
    pub fn take(&self) -> Vec<SimEvent> {
        std::mem::take(&mut *self.events.lock().expect("recording lock"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recording lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for Recording {
    fn record(&mut self, ev: &SimEvent) {
        self.events.lock().expect("recording lock").push(*ev);
    }
}

/// Fans every event out to several sinks, in order — e.g. a
/// [`Recording`] for the trace file plus a
/// [`Metrics`](crate::collect::Metrics) collector in one run.
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Box<dyn Sink>>,
}

impl Tee {
    /// Creates an empty tee (records into nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink to the fan-out, builder-style.
    pub fn with(mut self, sink: Box<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Sink for Tee {
    fn record(&mut self, ev: &SimEvent) {
        for s in &mut self.sinks {
            s.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_shares_state_across_clones() {
        let rec = Recording::new();
        let mut a = rec.clone();
        let mut b = rec.clone();
        a.record(&SimEvent::NodeFailed { at: 1, node: 2 });
        b.record(&SimEvent::NodeFailed { at: 2, node: 3 });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.take().len(), 2);
        assert!(rec.is_empty());
    }

    #[test]
    fn tee_fans_out() {
        let a = Recording::new();
        let b = Recording::new();
        let mut tee = Tee::new()
            .with(Box::new(a.clone()))
            .with(Box::new(b.clone()));
        tee.record(&SimEvent::LinkFailed { at: 0, a: 1, b: 2 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn null_sink_drops_everything() {
        let mut s = NullSink;
        s.record(&SimEvent::NodeFailed { at: 1, node: 2 });
    }
}
