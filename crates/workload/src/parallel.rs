//! Embarrassingly-parallel replication of the Chapter-7 sweeps.
//!
//! The dissertation's dynamic evaluation is a grid of independent
//! simulations — load points × routing schemes × RNG replications — and
//! every point is deterministic given its seed. This module fans the
//! grid across OS threads (dependency-free `std::thread::scope`, no
//! rayon) while keeping the output **bit-identical** to a serial run:
//!
//! 1. the point list is built up front in a canonical order
//!    (scheme-major, then load, then replication) and each point's RNG
//!    seed is derived from the base seed and the point's *position* in
//!    that list, never from which thread ran it;
//! 2. [`parallel_map`] writes each result into its point's slot, so
//!    results come back in point order regardless of scheduling;
//! 3. aggregation folds per-point accumulators in point order with the
//!    exact Welford merge ([`Accumulator::merge`]), which a serial run
//!    performs identically.
//!
//! Job count resolution honours `MCAST_JOBS`, then `RAYON_NUM_THREADS`
//! (the conventional knob, accepted for familiarity), then
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mcast_sim::routers::MulticastRouter;
use mcast_topology::Topology;

use crate::dynamic::{run_dynamic, run_dynamic_stream, DynamicConfig, DynamicResult, StreamConfig};
use crate::stats::Accumulator;

/// Resolves a job-count request: `Some(n)` forces `n`, `None` reads
/// `MCAST_JOBS` / `RAYON_NUM_THREADS` / the machine's parallelism.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    for var in ["MCAST_JOBS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// All cores (or the `MCAST_JOBS` / `RAYON_NUM_THREADS` override).
pub fn default_jobs() -> usize {
    resolve_jobs(None)
}

/// Applies `f` to every item on a pool of `jobs` scoped threads and
/// returns the results **in item order**. Work is claimed through an
/// atomic index (classic work-stealing-free self-scheduling), so the
/// assignment of items to threads is nondeterministic but the output
/// vector is not: slot `i` always holds `f(&items[i])`.
///
/// With `jobs <= 1` (or fewer than two items) this degenerates to a
/// plain serial map on the calling thread — same closure, same order,
/// bit-identical results.
pub fn parallel_map<I, R, F>(items: &[I], jobs: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// SplitMix64 — the per-point seed derivation. A point's seed depends
/// only on the base seed and the point's canonical index, so serial and
/// parallel runs (and runs with different job counts) draw identical
/// traffic.
pub fn replication_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The grid of a dynamic sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Statistics and physics shared by every point; `seed` is the
    /// *base* seed the per-point seeds derive from.
    pub base: DynamicConfig,
    /// Load axis: mean interarrival times (ns) to sweep.
    pub loads_ns: Vec<f64>,
    /// Independent replications (distinct derived seeds) per
    /// (scheme, load) point.
    pub replications: usize,
    /// Run every point through the bounded-memory streaming runner
    /// ([`run_dynamic_stream`]) instead of the materializing one.
    /// `None` — the default — keeps the historical `run_dynamic` path.
    pub stream: Option<StreamConfig>,
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Routing-scheme label (from the router list).
    pub scheme: String,
    /// Mean interarrival time (ns) of this point.
    pub mean_interarrival_ns: f64,
    /// Replication number within the (scheme, load) cell.
    pub replication: usize,
    /// The derived RNG seed this point ran with.
    pub seed: u64,
}

/// A finished sweep cell: the point plus its simulation outcome.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Which cell.
    pub point: SweepPoint,
    /// The dynamic-run outcome.
    pub result: DynamicResult,
}

/// Per-(scheme, load) aggregate over replications, folded in point
/// order with the exact Welford merge.
#[derive(Debug, Clone)]
pub struct SweepAggregate {
    /// Routing-scheme label.
    pub scheme: String,
    /// Mean interarrival time (ns).
    pub mean_interarrival_ns: f64,
    /// Replications folded in.
    pub replications: usize,
    /// Measured per-message latency (µs) pooled across replications.
    pub latency_us: Accumulator,
    /// Replications that hit the saturation guard.
    pub saturated: usize,
    /// Total message completions (warmup included).
    pub completed: u64,
    /// Total flit hops simulated.
    pub flit_hops: u64,
}

/// Builds the canonical point list: scheme-major, then load, then
/// replication, with seeds derived from the global point index.
pub fn sweep_points(schemes: &[&str], cfg: &SweepConfig) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(schemes.len() * cfg.loads_ns.len() * cfg.replications);
    for scheme in schemes {
        for &load in &cfg.loads_ns {
            for rep in 0..cfg.replications {
                let index = points.len() as u64;
                points.push(SweepPoint {
                    scheme: scheme.to_string(),
                    mean_interarrival_ns: load,
                    replication: rep,
                    seed: replication_seed(cfg.base.seed, index),
                });
            }
        }
    }
    points
}

/// Runs the whole sweep grid on `jobs` threads (`1` = serial) and
/// returns rows in canonical point order. A `jobs = 1` run and a
/// `jobs = N` run produce bit-identical rows — every point is an
/// independent deterministic simulation and row order is fixed by the
/// point list, not by thread scheduling.
pub fn run_dynamic_sweep<T: Topology + Sync + ?Sized>(
    topo: &T,
    routers: &[(&str, &(dyn MulticastRouter + Sync))],
    cfg: &SweepConfig,
    jobs: usize,
) -> Vec<SweepRow> {
    let schemes: Vec<&str> = routers.iter().map(|&(name, _)| name).collect();
    let points = sweep_points(&schemes, cfg);
    // Resolve each point's router once, up front.
    let items: Vec<(usize, SweepPoint)> = points
        .into_iter()
        .map(|p| {
            let r = routers
                .iter()
                .position(|&(name, _)| name == p.scheme)
                .expect("point scheme comes from the router list");
            (r, p)
        })
        .collect();
    let results = parallel_map(&items, jobs, |(router_idx, point)| {
        let mut point_cfg = cfg.base.clone();
        point_cfg.mean_interarrival_ns = point.mean_interarrival_ns;
        point_cfg.seed = point.seed;
        match &cfg.stream {
            Some(stream) => run_dynamic_stream(topo, routers[*router_idx].1, &point_cfg, stream),
            None => run_dynamic(topo, routers[*router_idx].1, &point_cfg),
        }
    });
    items
        .into_iter()
        .zip(results)
        .map(|((_, point), result)| SweepRow { point, result })
        .collect()
}

/// Folds sweep rows into per-(scheme, load) aggregates, merging the
/// per-replication latency accumulators in row order. Serial and
/// parallel sweeps hand this the same rows in the same order, so the
/// aggregates are bit-identical too.
pub fn aggregate_sweep(rows: &[SweepRow]) -> Vec<SweepAggregate> {
    let mut out: Vec<SweepAggregate> = Vec::new();
    for row in rows {
        let cell = match out.last_mut() {
            Some(a)
                if a.scheme == row.point.scheme
                    && a.mean_interarrival_ns == row.point.mean_interarrival_ns =>
            {
                a
            }
            _ => {
                out.push(SweepAggregate {
                    scheme: row.point.scheme.clone(),
                    mean_interarrival_ns: row.point.mean_interarrival_ns,
                    replications: 0,
                    latency_us: Accumulator::new(),
                    saturated: 0,
                    completed: 0,
                    flit_hops: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        cell.replications += 1;
        cell.latency_us.merge(&row.result.latency_stats);
        cell.saturated += usize::from(row.result.saturated);
        cell.completed += row.result.completed as u64;
        cell.flit_hops += row.result.flit_hops;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_sim::routers::{DualPathRouter, MultiPathMeshRouter};
    use mcast_topology::Mesh2D;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..37).collect();
        let serial = parallel_map(&items, 1, |&i| i * i);
        let parallel = parallel_map(&items, 4, |&i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn resolve_jobs_explicit_wins() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn replication_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|i| replication_seed(42, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision");
        assert_eq!(replication_seed(42, 7), replication_seed(42, 7));
        assert_ne!(replication_seed(42, 7), replication_seed(43, 7));
    }

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            base: DynamicConfig {
                warmup: 20,
                batch_size: 10,
                min_batches: 2,
                max_batches: 3,
                destinations: 4,
                ..DynamicConfig::default()
            },
            loads_ns: vec![800_000.0, 500_000.0],
            replications: 2,
            stream: None,
        }
    }

    #[test]
    fn sweep_parallel_matches_serial_bit_for_bit() {
        let mesh = Mesh2D::new(4, 4);
        let dual = DualPathRouter::mesh(mesh);
        let multi = MultiPathMeshRouter::new(mesh);
        let routers: [(&str, &(dyn MulticastRouter + Sync)); 2] =
            [("dual-path", &dual), ("multi-path", &multi)];
        let cfg = tiny_sweep();
        let serial = run_dynamic_sweep(&mesh, &routers, &cfg, 1);
        let parallel = run_dynamic_sweep(&mesh, &routers, &cfg, 4);
        assert_eq!(serial.len(), 2 * 2 * 2);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.result.mean_latency_us, b.result.mean_latency_us);
            assert_eq!(a.result.ci_us, b.result.ci_us);
            assert_eq!(a.result.saturated, b.result.saturated);
            assert_eq!(a.result.completed, b.result.completed);
            assert_eq!(a.result.flit_hops, b.result.flit_hops);
            assert_eq!(a.result.sim_time_ns, b.result.sim_time_ns);
        }
        let agg_s = aggregate_sweep(&serial);
        let agg_p = aggregate_sweep(&parallel);
        assert_eq!(agg_s.len(), agg_p.len());
        for (a, b) in agg_s.iter().zip(&agg_p) {
            assert_eq!(a.latency_us.mean(), b.latency_us.mean());
            assert_eq!(a.latency_us.count(), b.latency_us.count());
            assert_eq!(a.flit_hops, b.flit_hops);
        }
    }

    #[test]
    fn aggregate_groups_cells_in_order() {
        let mesh = Mesh2D::new(4, 4);
        let dual = DualPathRouter::mesh(mesh);
        let routers: [(&str, &(dyn MulticastRouter + Sync)); 1] = [("dual-path", &dual)];
        let cfg = tiny_sweep();
        let rows = run_dynamic_sweep(&mesh, &routers, &cfg, 1);
        let agg = aggregate_sweep(&rows);
        assert_eq!(agg.len(), cfg.loads_ns.len());
        for (i, a) in agg.iter().enumerate() {
            assert_eq!(a.scheme, "dual-path");
            assert_eq!(a.mean_interarrival_ns, cfg.loads_ns[i]);
            assert_eq!(a.replications, cfg.replications);
            assert!(a.completed > 0);
            assert!(a.flit_hops > 0);
        }
    }
}
