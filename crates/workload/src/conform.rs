//! Differential conformance fuzzing of the wormhole engine
//! (DESIGN.md §12, `mcast verify`).
//!
//! The optimized engine (`mcast_sim::Engine`) carries a calendar event
//! queue, arena worm state and clone-free injection — exactly the kind
//! of machinery whose bugs silently violate the paper's claims instead
//! of crashing. This module checks it against the deliberately naive
//! [`ReferenceEngine`], in the spirit of the executable deadlock-
//! freedom oracles of Verbeek & Schmaltz (arXiv:1110.4677):
//!
//! 1. a [`VerifyScenario`] is drawn deterministically from a seed:
//!    a registry (topology, scheme) pair, a traffic pattern, a load, a
//!    message budget and an optional fault mask;
//! 2. both engines run the identical injection schedule and their
//!    traces must agree *bit for bit*: delivery sets, per-message
//!    latencies, flit-hop totals, quiescence time, and the surviving
//!    (deadlocked) set;
//! 3. engine-independent invariants are checked on the optimized
//!    engine's event trace: flit conservation, in-order flit delivery
//!    per (message, channel), no channel acquired outside its claimed
//!    channel class, and — when the plans' channel dependency graph is
//!    acyclic — no deadlock (Dally & Seitz, §2.3.4);
//! 4. on failure, a greedy shrinker minimizes the scenario (drop
//!    messages, drop the fault mask, shrink topology dims, lower load,
//!    fewer destinations) and emits the reproducer as a checked-in-able
//!    [`ExperimentSpec`] JSON.

use mcast_obs::{Recording, SimEvent};
use mcast_sim::reference::ReferenceEngine;
use mcast_sim::registry::{build_fault_router, schemes_for, RegistryError, SchemeId, TopoSpec};
use mcast_sim::{ClassChoice, DeliveryPlan, Engine, MessageId, Network, PlanWorm, SimConfig, Time};
use mcast_topology::cdg::ChannelDependencyGraph;
use mcast_topology::{Channel, FaultMask, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::MulticastGen;
use crate::spec::{ExperimentSpec, FaultSpec, PatternSpec};

fn err(msg: impl Into<String>) -> RegistryError {
    RegistryError(msg.into())
}

/// One drawn conformance scenario — every axis the fuzzer varies, and
/// nothing else: the concrete workload (sources, destinations, arrival
/// times, fault mask) is a pure function of these fields, so a scenario
/// round-trips losslessly through an [`ExperimentSpec`] reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyScenario {
    /// The network.
    pub topology: TopoSpec,
    /// The routing scheme (must be simulable on `topology`).
    pub scheme: SchemeId,
    /// Traffic pattern (hot-spot node resolved from the topology).
    pub pattern: PatternSpec,
    /// Mean interarrival time in µs (lower = heavier).
    pub load_us: f64,
    /// Destinations per multicast.
    pub destinations: usize,
    /// Messages submitted.
    pub messages: usize,
    /// RNG seed for the workload and the fault mask.
    pub seed: u64,
    /// Link fault rate (0.0 = healthy network).
    pub fault_rate: f64,
    /// Worker lanes for the space-parallel engine (DESIGN.md §15).
    /// When > 1 the optimized engine runs a *third* time under the
    /// windowed parallel executor and its trace — including the full
    /// recorded event stream — must match the serial optimized run bit
    /// for bit.
    pub engine_jobs: usize,
    /// When true the optimized engine runs an extra leg in streaming
    /// (slot-recycling) mode — combined with `engine_jobs` lanes if
    /// both are drawn — and its trace plus full event stream must match
    /// the serial non-streaming run bit for bit (DESIGN.md §16).
    pub stream: bool,
}

impl VerifyScenario {
    /// The scenario as a checked-in-able [`ExperimentSpec`]: the shrunk
    /// reproducer format. The message budget and fault rate ride in the
    /// spec's `fault` section (rate 0.0 = healthy), the remaining axes
    /// map one-to-one.
    pub fn to_spec(&self) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            &format!("verify-repro-{}-{}", self.topology, self.scheme),
            self.topology.clone(),
        );
        spec.schemes = vec![self.scheme.clone()];
        spec.pattern = self.pattern;
        spec.loads_us = vec![self.load_us];
        spec.destinations = self.destinations;
        spec.replications = 1;
        spec.seed = self.seed;
        spec.fault = Some(FaultSpec {
            rates: vec![self.fault_rate],
            messages: self.messages,
            keep_connected: true,
        });
        spec.engine_jobs = self.engine_jobs;
        if self.stream {
            spec.stream = Some(crate::spec::StreamSpec::default());
        }
        spec
    }

    /// Reads a scenario back out of a reproducer spec (the inverse of
    /// [`VerifyScenario::to_spec`]; also accepts hand-written specs,
    /// taking the first scheme and the first load).
    pub fn from_spec(spec: &ExperimentSpec) -> Result<VerifyScenario, RegistryError> {
        let scheme = spec
            .schemes
            .first()
            .cloned()
            .ok_or_else(|| err("verify spec has no schemes"))?;
        let load_us = *spec
            .loads_us
            .first()
            .ok_or_else(|| err("verify spec has an empty load grid"))?;
        let (messages, fault_rate) = match &spec.fault {
            Some(f) => (f.messages, f.rates.first().copied().unwrap_or(0.0)),
            None => (16, 0.0),
        };
        Ok(VerifyScenario {
            topology: spec.topology.clone(),
            scheme,
            pattern: spec.pattern,
            load_us,
            destinations: spec.destinations,
            messages,
            seed: spec.seed,
            fault_rate,
            engine_jobs: spec.engine_jobs,
            stream: spec.stream.is_some(),
        })
    }

    /// A termination measure for the shrinker: every accepted shrink
    /// step strictly decreases it.
    fn size(&self) -> u64 {
        let load_heaviness = (1_000_000.0 / self.load_us.max(0.001)) as u64;
        self.messages as u64 * 1_000_000
            + self.topology.num_nodes() as u64 * 1_000
            + self.destinations as u64 * 10
            + u64::from(self.engine_jobs > 1) * 7
            + u64::from(self.stream) * 6
            + u64::from(self.fault_rate > 0.0) * 5
            + load_heaviness.min(4)
    }
}

impl std::fmt::Display for VerifyScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} pattern={} load={}us dests={} messages={} seed={} fault={} engine-jobs={} stream={}",
            self.topology,
            self.scheme,
            match self.pattern {
                PatternSpec::Uniform => "uniform",
                PatternSpec::Hotspot => "hotspot",
                PatternSpec::Bursty => "bursty",
            },
            self.load_us,
            self.destinations,
            self.messages,
            self.seed,
            self.fault_rate,
            self.engine_jobs,
            self.stream,
        )
    }
}

/// The derived concrete workload of a scenario: what both engines see.
struct Workload {
    classes: u8,
    mask: FaultMask,
    /// `(arrival time, plan)` in injection order.
    arrivals: Vec<(Time, DeliveryPlan)>,
    /// Multicasts the fault-aware planner could not route at all.
    planner_dropped: usize,
}

/// Expands a scenario into its injection schedule. Plans come from the
/// registry's fault-aware router so fault scenarios route around the
/// mask where the scheme supports it; schemes without fault planning
/// run oblivious and get screened by `inject_checked` instead.
fn derive_workload(s: &VerifyScenario) -> Result<Workload, RegistryError> {
    let built = s.topology.build();
    let n = s.topology.num_nodes();
    if s.destinations == 0 || s.destinations >= n {
        return Err(err(format!(
            "destinations {} out of range for {} ({n} nodes)",
            s.destinations, s.topology
        )));
    }
    let router = build_fault_router(&s.topology, &s.scheme)?;
    let mask = if s.fault_rate > 0.0 {
        FaultMask::random_links_connected(built.as_dyn(), s.fault_rate, s.seed ^ 0xfa17)
    } else {
        FaultMask::none()
    };
    let pattern = s.pattern.resolve(&s.topology);
    let mut gen = MulticastGen::new(n, s.seed);
    let mut arrivals = Vec::with_capacity(s.messages);
    let mut planner_dropped = 0;
    let mut t: Time = 0;
    for seq in 0..s.messages {
        t += gen.exponential_ns(s.load_us * 1000.0);
        let source = gen.source();
        let mc = pattern.apply(seq as u64, gen.multicast_distinct(source, s.destinations));
        match router.plan(&mc, &mask) {
            Ok(fp) if !fp.plan.destinations.is_empty() => arrivals.push((t, fp.plan)),
            _ => planner_dropped += 1,
        }
    }
    Ok(Workload {
        classes: router.required_classes(),
        mask,
        arrivals,
        planner_dropped,
    })
}

/// One completed message, in comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRecord {
    /// Engine message id (identical across engines — same inject order).
    pub id: MessageId,
    /// Network latency: completion minus injection.
    pub latency_ns: Time,
    /// Per-destination delivery times, plan order.
    pub deliveries: Vec<(NodeId, Time)>,
}

/// The comparable trace of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Whether the run drained (false = deadlock).
    pub quiesced: bool,
    /// Simulation time at quiescence.
    pub finished_at: Time,
    /// Total flit hops.
    pub flit_hops: u64,
    /// Messages accepted by `inject_checked`.
    pub injected: usize,
    /// Messages dropped at the source (unroutable or dead channels).
    pub dropped: usize,
    /// Completed messages, ascending id.
    pub completed: Vec<CompletedRecord>,
    /// Messages still in flight at quiescence (the deadlocked set).
    pub live: Vec<MessageId>,
}

/// Runs the injection schedule through the optimized engine, recording
/// the observability trace; `chaos` enables the engine's test-only
/// swapped-class bug, `engine_jobs > 1` routes execution through the
/// space-parallel windowed executor (DESIGN.md §15). Returns the trace,
/// the recorded events, and the plan injected under each message id.
fn run_optimized(
    wl: &Workload,
    topo: &TopoSpec,
    chaos: bool,
    engine_jobs: usize,
    stream: bool,
) -> (RunTrace, Vec<SimEvent>, Vec<Option<DeliveryPlan>>) {
    let built = topo.build();
    let mut engine = Engine::new(
        Network::new(built.as_dyn(), wl.classes),
        SimConfig::default(),
    );
    engine.set_chaos_swap_class(chaos);
    engine.set_engine_jobs(engine_jobs);
    engine.set_stream_mode(stream);
    let recording = Recording::new();
    engine.set_sink(Box::new(recording.clone()));
    let broken = engine.apply_fault_mask(&wl.mask);
    assert!(broken.is_empty(), "mask applied before any injection");
    let mut plans: Vec<Option<DeliveryPlan>> = Vec::new();
    let mut dropped = wl.planner_dropped;
    for (t, plan) in &wl.arrivals {
        engine.run_until(*t);
        match engine.inject_checked(plan) {
            Ok(slot) => {
                // External ids are assigned sequentially per successful
                // injection; under streaming the returned slot recycles,
                // so index by injection order instead.
                let id = if stream { plans.len() } else { slot };
                if plans.len() <= id {
                    plans.resize(id + 1, None);
                }
                plans[id] = Some(plan.clone());
            }
            Err(_) => dropped += 1,
        }
    }
    let quiesced = engine.run_to_quiescence();
    let mut completed: Vec<CompletedRecord> = Vec::new();
    if stream {
        // Exercise the zero-copy harvest path the streaming runner uses.
        engine.drain_completed(|c| {
            completed.push(CompletedRecord {
                id: c.id,
                latency_ns: c.completed_at - c.injected_at,
                deliveries: c.deliveries.clone(),
            })
        });
    } else {
        completed.extend(
            engine
                .take_completed()
                .into_iter()
                .map(|c| CompletedRecord {
                    id: c.id,
                    latency_ns: c.completed_at - c.injected_at,
                    deliveries: c.deliveries,
                }),
        );
    }
    completed.sort_by_key(|c| c.id);
    let trace = RunTrace {
        quiesced,
        finished_at: engine.now(),
        flit_hops: engine.flit_hops(),
        injected: plans.iter().filter(|p| p.is_some()).count(),
        dropped,
        completed,
        live: engine.live_message_ids(),
    };
    (trace, recording.take(), plans)
}

/// Runs the same schedule through the reference engine.
fn run_reference(wl: &Workload, topo: &TopoSpec) -> RunTrace {
    let built = topo.build();
    let mut engine = ReferenceEngine::new(
        Network::new(built.as_dyn(), wl.classes),
        SimConfig::default(),
    );
    engine.apply_fault_mask(&wl.mask);
    let mut injected = 0;
    let mut dropped = wl.planner_dropped;
    for (t, plan) in &wl.arrivals {
        engine.run_until(*t);
        match engine.inject_checked(plan) {
            Ok(_) => injected += 1,
            Err(_) => dropped += 1,
        }
    }
    let quiesced = engine.run_to_quiescence();
    let mut completed: Vec<CompletedRecord> = engine
        .take_completed()
        .into_iter()
        .map(|c| CompletedRecord {
            id: c.id,
            latency_ns: c.completed_at - c.injected_at,
            deliveries: c.deliveries,
        })
        .collect();
    completed.sort_by_key(|c| c.id);
    RunTrace {
        quiesced,
        finished_at: engine.now(),
        flit_hops: engine.flit_hops(),
        injected,
        dropped,
        completed,
        live: engine.live_messages(),
    }
}

/// Compares the two traces field by field, naming every divergence.
fn compare_traces(fast: &RunTrace, reference: &RunTrace) -> Vec<String> {
    let mut problems = Vec::new();
    if fast.quiesced != reference.quiesced {
        problems.push(format!(
            "quiescence disagrees: engine {} vs reference {}",
            fast.quiesced, reference.quiesced
        ));
    }
    if fast.finished_at != reference.finished_at {
        problems.push(format!(
            "quiescence time disagrees: engine {} vs reference {}",
            fast.finished_at, reference.finished_at
        ));
    }
    if fast.flit_hops != reference.flit_hops {
        problems.push(format!(
            "flit-hop totals disagree: engine {} vs reference {}",
            fast.flit_hops, reference.flit_hops
        ));
    }
    if (fast.injected, fast.dropped) != (reference.injected, reference.dropped) {
        problems.push(format!(
            "admission disagrees: engine {}/{} injected/dropped vs reference {}/{}",
            fast.injected, fast.dropped, reference.injected, reference.dropped
        ));
    }
    if fast.live != reference.live {
        problems.push(format!(
            "surviving sets disagree: engine {:?} vs reference {:?}",
            fast.live, reference.live
        ));
    }
    let ids = |t: &RunTrace| t.completed.iter().map(|c| c.id).collect::<Vec<_>>();
    if ids(fast) != ids(reference) {
        problems.push(format!(
            "delivery sets disagree: engine completed {:?} vs reference {:?}",
            ids(fast),
            ids(reference)
        ));
    } else {
        for (a, b) in fast.completed.iter().zip(&reference.completed) {
            if a.latency_ns != b.latency_ns {
                problems.push(format!(
                    "message {} latency disagrees: engine {} ns vs reference {} ns",
                    a.id, a.latency_ns, b.latency_ns
                ));
            } else if a.deliveries != b.deliveries {
                problems.push(format!(
                    "message {} delivery times disagree: engine {:?} vs reference {:?}",
                    a.id, a.deliveries, b.deliveries
                ));
            }
        }
    }
    problems
}

/// Engine-independent invariants, checked on the optimized engine's
/// event trace (the reference never sees these — they hold for *any*
/// correct wormhole engine).
fn check_invariants(
    topo: &TopoSpec,
    classes: u8,
    trace: &RunTrace,
    events: &[SimEvent],
    plans: &[Option<DeliveryPlan>],
) -> Vec<String> {
    let mut problems = Vec::new();
    let built = topo.build();
    let network = Network::new(built.as_dyn(), classes);
    let flits = SimConfig::default().flits_per_message();

    // Flit conservation: every admitted message either completed or is
    // still in flight (deadlocked); nothing vanishes.
    if trace.completed.len() + trace.live.len() != trace.injected {
        problems.push(format!(
            "flit conservation broken: {} completed + {} live != {} injected",
            trace.completed.len(),
            trace.live.len(),
            trace.injected
        ));
    }

    // Per-(message, channel) in-order flit delivery: flit indices run
    // 0, 1, 2, … per acquisition, never skipping or repeating.
    let mut last_flit: std::collections::HashMap<(MessageId, usize), u32> =
        std::collections::HashMap::new();
    for ev in events {
        if let SimEvent::FlitHop {
            channel,
            message,
            flit,
            ..
        } = *ev
        {
            let expected = match last_flit.get(&(message, channel)) {
                None => 0,
                Some(&prev) if prev + 1 == flits => 0, // re-acquisition
                Some(&prev) => prev + 1,
            };
            if flit != expected {
                problems.push(format!(
                    "out-of-order flit on channel {channel}: message {message} sent flit {flit}, expected {expected}"
                ));
                break;
            }
            last_flit.insert((message, channel), flit);
        }
    }

    // Channel-class containment: every acquired channel appears in the
    // owning message's plan with a compatible class choice.
    for ev in events {
        if let SimEvent::ChannelAcquired {
            channel, message, ..
        } = *ev
        {
            let c = network.channel(channel);
            let plan = plans.get(message).and_then(|p| p.as_ref());
            let allowed = plan.is_some_and(|plan| {
                plan_hops(plan).any(|(from, to, choice)| {
                    from == c.from
                        && to == c.to
                        && match choice {
                            ClassChoice::Any => true,
                            ClassChoice::Fixed(k) => k == c.class,
                        }
                })
            });
            if !allowed {
                problems.push(format!(
                    "message {message} acquired channel {channel} ({}->{} class {}) outside its claimed channel class",
                    c.from, c.to, c.class
                ));
                break;
            }
        }
    }

    // Dally & Seitz: an acyclic channel dependency graph rules out
    // deadlock, so a cyclic-free plan set must quiesce.
    if !trace.quiesced {
        if let Some(cdg) = plans_cdg(plans, classes) {
            if cdg.is_acyclic() {
                problems.push("deadlock despite an acyclic channel dependency graph".to_string());
            }
        }
    }
    problems
}

/// Iterates a plan's hops as `(from, to, class choice)`.
fn plan_hops(plan: &DeliveryPlan) -> impl Iterator<Item = (NodeId, NodeId, ClassChoice)> + '_ {
    plan.worms.iter().flat_map(|w| match w {
        PlanWorm::Path(p) | PlanWorm::Circuit(p) => p
            .nodes
            .windows(2)
            .map(|win| (win[0], win[1], p.class))
            .collect::<Vec<_>>(),
        PlanWorm::Staged(s) => s
            .path
            .nodes
            .windows(2)
            .map(|win| (win[0], win[1], s.path.class))
            .collect::<Vec<_>>(),
        PlanWorm::Tree(t) => t.edges.clone(),
    })
}

/// Builds the channel dependency graph of the injected plans, with the
/// worm-coupling over-approximation: path and circuit worms contribute
/// consecutive-hop dependencies, lock-step tree worms couple all their
/// channels pairwise (any held channel may wait on any unacquired one).
///
/// Class handling must project every *physical* channel to exactly one
/// CDG vertex: with a single class — or when every hop pins a `Fixed`
/// class — the projection is exact; otherwise `Any` hops make the
/// projection ambiguous and we return `None` (no claim either way).
fn plans_cdg(plans: &[Option<DeliveryPlan>], classes: u8) -> Option<ChannelDependencyGraph> {
    let plans: Vec<&DeliveryPlan> = plans.iter().flatten().collect();
    let exact = classes == 1
        || plans
            .iter()
            .all(|p| plan_hops(p).all(|(_, _, c)| matches!(c, ClassChoice::Fixed(_))));
    if !exact {
        return None;
    }
    let vertex = |from: NodeId, to: NodeId, choice: ClassChoice| match choice {
        ClassChoice::Fixed(k) => Channel::with_class(from, to, k),
        ClassChoice::Any => Channel::new(from, to),
    };
    let mut channels: Vec<Channel> = Vec::new();
    for p in &plans {
        for (from, to, choice) in plan_hops(p) {
            let v = vertex(from, to, choice);
            if !channels.contains(&v) {
                channels.push(v);
            }
        }
    }
    let mut cdg = ChannelDependencyGraph::new(channels);
    for p in &plans {
        for w in &p.worms {
            match w {
                // A held staged worm occupies no channel, so its only
                // channel-wait dependencies are the consecutive-hop
                // ones of its released path — exactly a path worm's.
                PlanWorm::Path(pp) | PlanWorm::Circuit(pp) => {
                    for win in pp.nodes.windows(3) {
                        cdg.add_dependency(
                            vertex(win[0], win[1], pp.class),
                            vertex(win[1], win[2], pp.class),
                        );
                    }
                }
                PlanWorm::Staged(st) => {
                    for win in st.path.nodes.windows(3) {
                        cdg.add_dependency(
                            vertex(win[0], win[1], st.path.class),
                            vertex(win[1], win[2], st.path.class),
                        );
                    }
                }
                PlanWorm::Tree(t) => {
                    for &(f1, t1, c1) in &t.edges {
                        for &(f2, t2, c2) in &t.edges {
                            let (a, b) = (vertex(f1, t1, c1), vertex(f2, t2, c2));
                            if a != b {
                                cdg.add_dependency(a, b);
                            }
                        }
                    }
                }
            }
        }
    }
    Some(cdg)
}

/// Checks one scenario end to end. An empty vector means the engines
/// agree and every invariant holds.
///
/// When `s.engine_jobs > 1` the optimized engine runs twice — serial
/// and space-parallel — and the parallel run is held to a *stricter*
/// bar than the reference comparison: the full recorded event stream
/// must be identical, not just the aggregate trace.
pub fn check_scenario(s: &VerifyScenario, chaos: bool) -> Result<Vec<String>, RegistryError> {
    let wl = derive_workload(s)?;
    let (fast, events, plans) = run_optimized(&wl, &s.topology, chaos, 1, false);
    let reference = run_reference(&wl, &s.topology);
    let mut problems = compare_traces(&fast, &reference);
    if s.engine_jobs > 1 {
        let (par, par_events, _) = run_optimized(&wl, &s.topology, chaos, s.engine_jobs, false);
        if par != fast {
            problems.push(format!(
                "parallel engine ({} jobs) trace diverges from serial: parallel {:?} vs serial {:?}",
                s.engine_jobs, par, fast
            ));
        }
        if par_events != events {
            let first = par_events
                .iter()
                .zip(&events)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| par_events.len().min(events.len()));
            problems.push(format!(
                "parallel engine ({} jobs) event stream diverges from serial at event {first}: \
                 parallel {:?} vs serial {:?} ({} vs {} events total)",
                s.engine_jobs,
                par_events.get(first),
                events.get(first),
                par_events.len(),
                events.len()
            ));
        }
    }
    if s.stream {
        // The streaming leg recycles message/worm slots internally, but
        // every externally visible output — trace AND the full event
        // stream — must match the serial non-streaming run bit for bit.
        // When the parallel axis is drawn too, the streamed leg runs
        // under the windowed executor, covering both at once.
        let (st, st_events, _) = run_optimized(&wl, &s.topology, chaos, s.engine_jobs, true);
        if st != fast {
            problems.push(format!(
                "streaming engine ({} jobs) trace diverges from non-streaming: \
                 streamed {:?} vs plain {:?}",
                s.engine_jobs, st, fast
            ));
        }
        if st_events != events {
            let first = st_events
                .iter()
                .zip(&events)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| st_events.len().min(events.len()));
            problems.push(format!(
                "streaming engine event stream diverges from non-streaming at event {first}: \
                 streamed {:?} vs plain {:?} ({} vs {} events total)",
                st_events.get(first),
                events.get(first),
                st_events.len(),
                events.len()
            ));
        }
    }
    problems.extend(check_invariants(
        &s.topology,
        wl.classes,
        &fast,
        &events,
        &plans,
    ));
    Ok(problems)
}

/// Greedily minimizes a failing scenario: each round tries the shrink
/// moves in order (fewer messages, no faults, fewer destinations,
/// smaller topology, lighter load) and keeps the first candidate that
/// still fails. Every accepted move strictly shrinks
/// [`VerifyScenario::size`], so the loop terminates.
pub fn shrink_scenario(s: &VerifyScenario, chaos: bool) -> VerifyScenario {
    let fails = |c: &VerifyScenario| matches!(check_scenario(c, chaos), Ok(p) if !p.is_empty());
    let mut cur = s.clone();
    loop {
        let mut advanced = false;
        for cand in shrink_candidates(&cur) {
            debug_assert!(cand.size() < cur.size(), "shrink step must shrink");
            if fails(&cand) {
                cur = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return cur;
        }
    }
}

fn shrink_candidates(s: &VerifyScenario) -> Vec<VerifyScenario> {
    let mut out = Vec::new();
    let mut push = |c: VerifyScenario| {
        if c.size() < s.size() && !out.contains(&c) {
            out.push(c);
        }
    };
    if s.messages > 1 {
        push(VerifyScenario {
            messages: (s.messages / 2).max(1),
            ..s.clone()
        });
        push(VerifyScenario {
            messages: s.messages - 1,
            ..s.clone()
        });
    }
    if s.fault_rate > 0.0 {
        push(VerifyScenario {
            fault_rate: 0.0,
            ..s.clone()
        });
    }
    if s.engine_jobs > 1 {
        // If the failure reproduces serially, drop the parallel leg —
        // reproducers should not depend on thread count unless the bug
        // genuinely lives in the windowed executor.
        push(VerifyScenario {
            engine_jobs: 1,
            ..s.clone()
        });
    }
    if s.stream {
        // Likewise: keep the streaming leg only when the bug needs it.
        push(VerifyScenario {
            stream: false,
            ..s.clone()
        });
    }
    if s.destinations > 1 {
        push(VerifyScenario {
            destinations: s.destinations / 2,
            ..s.clone()
        });
        push(VerifyScenario {
            destinations: s.destinations - 1,
            ..s.clone()
        });
    }
    for topo in shrink_topologies(&s.topology) {
        // The scheme must stay registered on the smaller network, and
        // the destination count in range.
        if schemes_for(&topo).contains(&s.scheme) && s.destinations < topo.num_nodes() {
            push(VerifyScenario {
                topology: topo,
                ..s.clone()
            });
        }
    }
    if s.load_us < 1000.0 {
        push(VerifyScenario {
            load_us: s.load_us * 4.0,
            ..s.clone()
        });
    }
    out
}

fn shrink_topologies(t: &TopoSpec) -> Vec<TopoSpec> {
    match *t {
        TopoSpec::Mesh2D { w, h } => {
            let mut v = Vec::new();
            if w > 2 {
                v.push(TopoSpec::Mesh2D { w: w - 1, h });
            }
            if h > 2 {
                v.push(TopoSpec::Mesh2D { w, h: h - 1 });
            }
            v
        }
        TopoSpec::Mesh3D { w, h, d } => {
            let mut v = Vec::new();
            if w > 2 {
                v.push(TopoSpec::Mesh3D { w: w - 1, h, d });
            }
            if h > 2 {
                v.push(TopoSpec::Mesh3D { w, h: h - 1, d });
            }
            if d > 2 {
                v.push(TopoSpec::Mesh3D { w, h, d: d - 1 });
            }
            v
        }
        TopoSpec::Hypercube { dim } if dim > 2 => vec![TopoSpec::Hypercube { dim: dim - 1 }],
        TopoSpec::Hypercube { .. } => Vec::new(),
        TopoSpec::KAryNCube { k, n, wraps } => {
            let mut v = Vec::new();
            if k > 2 {
                v.push(TopoSpec::KAryNCube { k: k - 1, n, wraps });
            }
            if n > 1 {
                v.push(TopoSpec::KAryNCube { k, n: n - 1, wraps });
            }
            v
        }
        // Custom graphs have no structural shrink axis — minimization
        // proceeds on the workload axes only.
        TopoSpec::Custom { .. } => Vec::new(),
    }
}

/// The topology pool the fuzzer cycles through — small enough that a
/// quick run stays fast, varied enough to reach every registered
/// scheme (2D/3D meshes, hypercubes, k-ary meshes and tori, plus
/// generator-form custom graphs whose seed is re-drawn per case by
/// [`scenario_for_case`] so a long run samples many irregular graphs).
pub const TOPOLOGY_POOL: &[&str] = &[
    "mesh:4x4",
    "mesh:5x3",
    "mesh:3x3x2",
    "cube:3",
    "cube:4",
    "kary:4x2",
    "torus:3x2",
    "custom:rand:10x3",
    "custom:lmesh:4x4x2",
];

/// Every (topology, scheme) pair the fuzzer covers: the pool crossed
/// with `schemes_for`. `mcast verify --cases K` walks these round-robin
/// so K ≥ the pair count covers the whole registry.
pub fn registry_pairs() -> Vec<(TopoSpec, SchemeId)> {
    TOPOLOGY_POOL
        .iter()
        .map(|t| TopoSpec::parse(t).expect("pool specs parse"))
        .flat_map(|topo| {
            schemes_for(&topo)
                .into_iter()
                .map(move |s| (topo.clone(), s))
        })
        .collect()
}

/// Draws the deterministic scenario for one case index: the (topology,
/// scheme) pair cycles through [`registry_pairs`] for coverage, the
/// remaining axes come from the case's own seeded RNG.
pub fn scenario_for_case(seed: u64, case: usize) -> VerifyScenario {
    let pairs = registry_pairs();
    let (topology, scheme) = pairs[case % pairs.len()].clone();
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(case as u64),
    );
    let topology = reseed_custom(topology, &mut rng);
    let n = topology.num_nodes();
    let load_us = *[2.0, 10.0, 60.0]
        .get(rng.gen_range(0..3usize))
        .expect("load pool");
    let mut scenario = VerifyScenario {
        topology,
        scheme,
        pattern: if rng.gen_range(0..2u32) == 0 {
            PatternSpec::Uniform
        } else {
            PatternSpec::Hotspot
        },
        load_us,
        destinations: rng.gen_range(1..=6.min(n - 1)),
        messages: rng.gen_range(2..=20),
        fault_rate: if rng.gen_range(0..4u32) == 0 {
            0.08
        } else {
            0.0
        },
        seed: rng.gen_range(0..1u64 << 48),
        // Drawn *after* every pre-existing axis so case seeds keep
        // producing the workloads they always did; roughly a quarter of
        // cases exercise the space-parallel executor (jobs 2 or 4).
        engine_jobs: match rng.gen_range(0..8u32) {
            0 => 2,
            1 => 4,
            _ => 1,
        },
        // Drawn after every pre-existing axis (same seed rule as
        // above); roughly a quarter of cases run the streaming
        // (slot-recycling) leg, some of those on the parallel executor.
        stream: rng.gen_range(0..4u32) == 0,
    };
    // Newest axis, drawn after every pre-existing one so earlier case
    // seeds keep producing the workloads they always did: roughly a
    // fifth of cases rewrite the drawn pattern to the bursty
    // application-phase pattern (alternating uniform and root-directed
    // phases).
    if rng.gen_range(0..5u32) == 0 {
        scenario.pattern = PatternSpec::Bursty;
    }
    scenario
}

/// Generator-form custom topologies (`rand:`/`lmesh:`/`ftree:` sources)
/// get a fresh per-case graph seed so the fuzzer samples a different
/// irregular graph each time the pool entry comes around, rather than
/// re-testing one fixed graph. The trailing `x<seed>` field of the
/// source is rewritten from the case RNG; node count is unaffected.
/// File-backed sources pass through untouched.
fn reseed_custom(topo: TopoSpec, rng: &mut StdRng) -> TopoSpec {
    let TopoSpec::Custom { ref source, .. } = topo else {
        return topo;
    };
    if !["rand:", "lmesh:", "ftree:"]
        .iter()
        .any(|p| source.starts_with(p))
    {
        return topo;
    }
    let Some((head, _)) = source.rsplit_once('x') else {
        return topo;
    };
    let reseeded = format!("custom:{head}x{}", rng.gen_range(0..1u64 << 16));
    TopoSpec::parse(&reseeded).expect("reseeded generator source parses")
}

/// One caught conformance failure, with its shrunk reproducer.
#[derive(Debug, Clone)]
pub struct VerifyFailure {
    /// The case index that failed.
    pub case: usize,
    /// The scenario as drawn.
    pub scenario: VerifyScenario,
    /// The divergences/violations found on the drawn scenario.
    pub problems: Vec<String>,
    /// The minimized scenario that still fails.
    pub shrunk: VerifyScenario,
    /// The divergences on the minimized scenario.
    pub shrunk_problems: Vec<String>,
}

impl VerifyFailure {
    /// The shrunk scenario as a checked-in-able reproducer spec (JSON
    /// via [`ExperimentSpec::to_json`]).
    pub fn reproducer_spec(&self) -> ExperimentSpec {
        self.shrunk.to_spec()
    }
}

/// What one `mcast verify` run produced.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Cases executed.
    pub cases: usize,
    /// Distinct (topology, scheme) pairs covered.
    pub pairs_covered: usize,
    /// Conformance failures, shrunk. Empty = the engines conform.
    pub failures: Vec<VerifyFailure>,
}

/// Runs `cases` differential cases from `seed`, shrinking every
/// failure. `chaos` turns on the optimized engine's test-only
/// swapped-class bug — the harness's own self-test (it must then
/// report failures).
pub fn run_verify(seed: u64, cases: usize, chaos: bool) -> Result<VerifyReport, RegistryError> {
    let pair_count = registry_pairs().len();
    let mut failures = Vec::new();
    for case in 0..cases {
        // The first few failures shrink and report; past that, more of
        // the same signal isn't worth the shrink cost.
        if failures.len() >= 4 {
            break;
        }
        let scenario = scenario_for_case(seed, case);
        let problems = check_scenario(&scenario, chaos)?;
        if !problems.is_empty() {
            let shrunk = shrink_scenario(&scenario, chaos);
            let shrunk_problems = check_scenario(&shrunk, chaos)?;
            failures.push(VerifyFailure {
                case,
                scenario,
                problems,
                shrunk,
                shrunk_problems,
            });
        }
    }
    Ok(VerifyReport {
        cases,
        pairs_covered: pair_count.min(cases),
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_spec_round_trip() {
        let s = scenario_for_case(42, 5);
        let spec = s.to_spec();
        spec.validate().expect("reproducer specs validate");
        let back = VerifyScenario::from_spec(&spec).unwrap();
        assert_eq!(back, s);
        let reparsed = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(VerifyScenario::from_spec(&reparsed).unwrap(), s);
    }

    #[test]
    fn registry_pairs_cover_every_simulable_scheme() {
        let pairs = registry_pairs();
        for info in mcast_sim::registry::SCHEMES.iter().filter(|i| i.simulable) {
            assert!(
                pairs.iter().any(|(_, s)| s.name == info.name),
                "scheme {} unreachable from the topology pool",
                info.name
            );
        }
    }

    #[test]
    fn quick_sample_of_cases_conforms() {
        // A fast smoke: one case per pool topology. The full sweep is
        // `mcast verify` / tests/conformance.rs.
        for case in 0..6 {
            let s = scenario_for_case(1, case * 7);
            let problems = check_scenario(&s, false).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(problems.is_empty(), "case {case} ({s}): {problems:?}");
        }
    }

    #[test]
    fn parallel_leg_conforms_on_sampled_cases() {
        // Force the space-parallel third leg on a handful of drawn
        // cases regardless of what the case RNG rolled: every one must
        // still conform (serial-vs-reference AND parallel-vs-serial,
        // including bit-identical event streams).
        for case in 0..4 {
            let mut s = scenario_for_case(7, case * 5);
            s.engine_jobs = 4;
            let problems = check_scenario(&s, false).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(problems.is_empty(), "case {case} ({s}): {problems:?}");
        }
    }

    #[test]
    fn streaming_leg_conforms_on_sampled_cases() {
        // Force the streaming leg on a handful of drawn cases — serial
        // and parallel — regardless of what the case RNG rolled.
        for case in 0..4 {
            let mut s = scenario_for_case(13, case * 3);
            s.stream = true;
            s.engine_jobs = if case % 2 == 0 { 1 } else { 4 };
            let problems = check_scenario(&s, false).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(problems.is_empty(), "case {case} ({s}): {problems:?}");
        }
    }

    #[test]
    fn stream_axis_round_trips_through_reproducer_spec() {
        let mut s = scenario_for_case(42, 5);
        s.stream = true;
        let spec = s.to_spec();
        spec.validate().expect("streamed reproducer validates");
        assert_eq!(VerifyScenario::from_spec(&spec).unwrap(), s);
        let reparsed = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(VerifyScenario::from_spec(&reparsed).unwrap(), s);
    }

    #[test]
    fn chaos_class_swap_is_caught_and_shrinks_small() {
        // The acceptance gate: the injected swapped-class bug must be
        // detected and shrink to a reproducer of at most 4 messages.
        // dc-tree pins Fixed classes on a 2-class network, so the
        // class-containment invariant must fire.
        let s = VerifyScenario {
            topology: TopoSpec::parse("mesh:4x4").unwrap(),
            scheme: SchemeId::named("dc-tree"),
            pattern: PatternSpec::Uniform,
            load_us: 10.0,
            destinations: 4,
            messages: 12,
            seed: 3,
            fault_rate: 0.0,
            engine_jobs: 1,
            stream: false,
        };
        let problems = check_scenario(&s, true).unwrap();
        assert!(!problems.is_empty(), "chaos run must fail conformance");
        let shrunk = shrink_scenario(&s, true);
        assert!(
            shrunk.messages <= 4,
            "shrunk to {} messages",
            shrunk.messages
        );
        let spec = shrunk.to_spec();
        spec.validate().expect("reproducer validates");
        assert!(!check_scenario(&shrunk, true).unwrap().is_empty());
        // And the same scenario passes with the bug off.
        assert!(check_scenario(&s, false).unwrap().is_empty());
    }
}

#[cfg(test)]
mod custom_pool_tests {
    use super::*;

    #[test]
    fn nightly_case_budget_samples_enough_distinct_graphs() {
        // The nightly CI job runs 4096 cases; the generator-form custom
        // pool entries are reseeded per case, and the acceptance bar is
        // that a night samples at least 256 *distinct* random irregular
        // graphs through the conformance oracle.
        let custom_pairs = registry_pairs()
            .iter()
            .filter(|(t, _)| matches!(t, TopoSpec::Custom { .. }))
            .count();
        assert!(custom_pairs >= 2, "custom pool entries missing");
        let mut distinct = std::collections::HashSet::new();
        for case in 0..4096 {
            let s = scenario_for_case(1, case);
            if let TopoSpec::Custom { source, .. } = &s.topology {
                distinct.insert(source.clone());
            }
        }
        assert!(
            distinct.len() >= 256,
            "only {} distinct custom graphs in 4096 cases",
            distinct.len()
        );
    }

    #[test]
    fn nightly_case_budget_exercises_parallel_engine_enough() {
        // Same nightly budget, second acceptance bar: a meaningful
        // fraction of the 4096 cases must run the space-parallel third
        // leg (engine_jobs ∈ {2, 4}), and both lane counts must appear.
        // The draw targets 1/4 of cases; require at least 512 (half the
        // expectation) so the bound survives RNG drift without going
        // soft.
        let mut parallel = 0usize;
        let mut lanes = std::collections::HashSet::new();
        for case in 0..4096 {
            let s = scenario_for_case(1, case);
            if s.engine_jobs > 1 {
                parallel += 1;
                lanes.insert(s.engine_jobs);
            }
        }
        assert!(
            parallel >= 512,
            "only {parallel} of 4096 nightly cases exercise the parallel engine"
        );
        assert!(
            lanes.contains(&2) && lanes.contains(&4),
            "nightly draw must cover both 2- and 4-lane runs, got {lanes:?}"
        );
    }

    #[test]
    fn nightly_case_budget_covers_every_modern_scheme() {
        // Same nightly budget, third acceptance bar: the round-robin
        // pair cycle must put each modern competitor scheme (DPM and
        // the software collectives) through the oracle at least 256
        // times a night, and the bursty phase pattern must show up as
        // a meaningful axis alongside them.
        let modern = ["dpm", "binomial", "recursive-doubling", "binomial-reliable"];
        let mut per_scheme = std::collections::HashMap::new();
        let mut bursty = 0usize;
        for case in 0..4096 {
            let s = scenario_for_case(1, case);
            *per_scheme.entry(s.scheme.name.clone()).or_insert(0usize) += 1;
            if s.pattern == PatternSpec::Bursty {
                bursty += 1;
            }
        }
        for name in modern {
            let n = per_scheme.get(name).copied().unwrap_or(0);
            assert!(
                n >= 256,
                "only {n} of 4096 nightly cases draw scheme {name}"
            );
        }
        // The draw targets 1/5 of cases; require half the expectation.
        assert!(
            bursty >= 409,
            "only {bursty} of 4096 nightly cases use the bursty pattern"
        );
    }

    fn ceil_log2(n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        }
    }

    #[test]
    fn collective_plans_deliver_exactly_once_within_log_rounds() {
        // The software-collective property, checked on every pool
        // topology: each destination is the endpoint of exactly one
        // unicast send, and the staged dependency chains are no deeper
        // than ⌈log₂ ranks⌉ rounds.
        use mcast_sim::registry::build_router;
        for topo in TOPOLOGY_POOL {
            let spec = TopoSpec::parse(topo).unwrap();
            let n = spec.num_nodes();
            for name in ["binomial", "recursive-doubling", "binomial-reliable"] {
                let router = build_router(&spec, &SchemeId::named(name))
                    .unwrap_or_else(|e| panic!("{name} on {topo}: {e}"));
                let mut gen = MulticastGen::new(n, 0xC0FFEE);
                for _ in 0..8 {
                    let source = gen.source();
                    let mc = gen.multicast_distinct(source, 6.min(n - 1));
                    let plan = router.plan(&mc);
                    let ranks = 1 + plan
                        .destinations
                        .iter()
                        .filter(|&&d| d != source)
                        .collect::<std::collections::HashSet<_>>()
                        .len();
                    let mut depth = vec![0usize; plan.worms.len()];
                    let mut recv_count: std::collections::HashMap<NodeId, usize> =
                        std::collections::HashMap::new();
                    for (i, w) in plan.worms.iter().enumerate() {
                        let path = match w {
                            PlanWorm::Path(p) => p,
                            PlanWorm::Staged(s) => {
                                depth[i] = 1 + s
                                    .after
                                    .iter()
                                    .map(|&a| depth[a as usize])
                                    .max()
                                    .expect("staged worms have feeders");
                                &s.path
                            }
                            _ => panic!("{name} plans are unicast paths"),
                        };
                        *recv_count.entry(*path.nodes.last().unwrap()).or_insert(0) += 1;
                    }
                    let rounds = 1 + depth.iter().copied().max().unwrap_or(0);
                    assert!(
                        rounds <= ceil_log2(ranks).max(1),
                        "{name} on {topo}: {rounds} rounds for {ranks} ranks"
                    );
                    for d in &plan.destinations {
                        assert_eq!(
                            recv_count.get(d),
                            Some(&1),
                            "{name} on {topo}: destination {d} not delivered exactly once"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn modern_schemes_conform_under_parallel_and_streaming() {
        // Pinned bit-identity check for the modern competitor schemes:
        // on each, the 4-lane windowed executor and the streaming
        // (slot-recycling) leg must reproduce the serial event stream
        // bit for bit, under the bursty phase pattern.
        for name in ["dpm", "binomial", "recursive-doubling", "binomial-reliable"] {
            for topo in ["mesh:5x3", "cube:3"] {
                let s = VerifyScenario {
                    topology: TopoSpec::parse(topo).unwrap(),
                    scheme: SchemeId::named(name),
                    pattern: PatternSpec::Bursty,
                    load_us: 10.0,
                    destinations: 5,
                    messages: 12,
                    seed: 99,
                    fault_rate: 0.0,
                    engine_jobs: 4,
                    stream: true,
                };
                let problems = check_scenario(&s, false).unwrap_or_else(|e| panic!("{s}: {e}"));
                assert!(problems.is_empty(), "{s}: {problems:?}");
            }
        }
    }

    #[test]
    fn modern_scheme_deadlock_claims_hold_on_every_pool_topology() {
        // Registry exhaustiveness: every pool topology offers all four
        // modern schemes. And wherever `scheme_deadlock_free` claims
        // deadlock freedom, the channel dependency graph of a sampled
        // plan set must be acyclic (Dally & Seitz); on wraparound tori
        // no such claim may be made.
        use mcast_sim::registry::{build_router, scheme_deadlock_free};
        let modern = ["dpm", "binomial", "recursive-doubling", "binomial-reliable"];
        for topo in TOPOLOGY_POOL {
            let spec = TopoSpec::parse(topo).unwrap();
            let schemes = schemes_for(&spec);
            for name in modern {
                assert!(
                    schemes.iter().any(|s| s.name == name),
                    "{name} missing from schemes_for({topo})"
                );
            }
            let n = spec.num_nodes();
            for name in modern {
                if !scheme_deadlock_free(&spec, name) {
                    assert!(
                        matches!(spec, TopoSpec::KAryNCube { wraps: true, .. }),
                        "{name} on {topo}: deadlock freedom only waived on wraparound tori"
                    );
                    continue;
                }
                let router = build_router(&spec, &SchemeId::named(name)).unwrap();
                let classes = router.required_classes();
                let mut gen = MulticastGen::new(n, 0xD06);
                let plans: Vec<Option<DeliveryPlan>> = (0..10)
                    .map(|_| {
                        let source = gen.source();
                        Some(router.plan(&gen.multicast_distinct(source, 5.min(n - 1))))
                    })
                    .collect();
                let cdg = plans_cdg(&plans, classes)
                    .unwrap_or_else(|| panic!("{name} on {topo}: CDG projection inexact"));
                assert!(
                    cdg.is_acyclic(),
                    "{name} on {topo}: cyclic channel dependency graph despite deadlock-free claim"
                );
            }
        }
    }
}
