//! Declarative experiment specifications (DESIGN.md §11).
//!
//! An [`ExperimentSpec`] is the data form of one Chapter-7-style
//! evaluation: which topology, which routing schemes, which traffic
//! pattern, the load grid, and the stopping rule — everything a run
//! needs, serializable to dependency-free JSON (via [`mcast_obs::Json`])
//! so the run is a reproducible artifact. The CLI (`mcast run --spec`),
//! the legacy flag-driven subcommands, and the bench figure drivers all
//! construct specs and execute them through the same three entry
//! points: [`ExperimentSpec::run_point`] (one `run_dynamic` call),
//! [`ExperimentSpec::run_sweep`] (the parallel grid), and
//! [`ExperimentSpec::run_fault_sweep`] (the degraded-network sweep).
//!
//! Routers are resolved through `mcast_sim::registry`, so a spec works
//! on every registered (topology, scheme) pair — 2D/3D meshes,
//! hypercubes and k-ary n-cubes alike.

use mcast_obs::json::Json;
use mcast_sim::registry::{build_fault_router, build_router, RegistryError, SchemeId, TopoSpec};
use mcast_sim::routers::{ClassOverrideRouter, MulticastRouter};
use mcast_sim::FaultMulticastRouter;

use crate::dynamic::{
    run_dynamic, run_dynamic_stream, DynamicConfig, DynamicResult, StreamConfig, TrafficPattern,
};
use crate::fault_sweep::{run_fault_sweep, FaultSweepConfig, FaultSweepRow};
use crate::parallel::{replication_seed, run_dynamic_sweep, SweepConfig, SweepRow};

fn err(msg: impl Into<String>) -> RegistryError {
    RegistryError(msg.into())
}

/// A registry-built router as the sweep harness consumes it.
pub type SchemeRouter = Box<dyn MulticastRouter + Send + Sync>;

/// The traffic pattern of a spec (resolved to a concrete
/// [`TrafficPattern`] — with the topology's hot-spot node — at run
/// time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSpec {
    /// Uniform random destinations.
    Uniform,
    /// Every multicast also addresses the topology's hot-spot node.
    Hotspot,
    /// Bursty application phases (DESIGN.md §17): alternating broadcast
    /// (uniform) and allreduce (converging on the topology's hot-spot
    /// node as reduction root) phases of
    /// [`PatternSpec::BURSTY_PHASE_LEN`] injections each.
    Bursty,
}

impl PatternSpec {
    /// Injections per bursty phase (the phase alternation period).
    pub const BURSTY_PHASE_LEN: u64 = 64;

    /// Resolves to a concrete [`TrafficPattern`] on the given topology.
    pub fn resolve(&self, topo: &TopoSpec) -> TrafficPattern {
        match self {
            PatternSpec::Uniform => TrafficPattern::Uniform,
            PatternSpec::Hotspot => TrafficPattern::Hotspot {
                node: topo.hotspot_node(),
            },
            PatternSpec::Bursty => TrafficPattern::Bursty {
                phase_len: Self::BURSTY_PHASE_LEN,
                root: topo.hotspot_node(),
            },
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            PatternSpec::Uniform => "uniform",
            PatternSpec::Hotspot => "hotspot",
            PatternSpec::Bursty => "bursty",
        }
    }

    fn parse(s: &str) -> Result<PatternSpec, RegistryError> {
        match s {
            "uniform" => Ok(PatternSpec::Uniform),
            "hotspot" => Ok(PatternSpec::Hotspot),
            "bursty" => Ok(PatternSpec::Bursty),
            other => Err(err(format!(
                "unknown pattern {other:?} (expected uniform, hotspot or bursty)"
            ))),
        }
    }
}

/// The batch-means stopping rule and saturation guard (§7.2).
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingRule {
    /// Messages discarded as warmup.
    pub warmup: usize,
    /// Observations per batch.
    pub batch_size: usize,
    /// Minimum batches before the CI rule may stop the run.
    pub min_batches: usize,
    /// Hard cap on batches.
    pub max_batches: usize,
    /// CI-to-mean stopping ratio.
    pub ci_ratio: f64,
    /// Saturation guard (in-flight messages per node).
    pub max_in_flight_per_node: usize,
}

impl Default for StoppingRule {
    fn default() -> Self {
        let d = DynamicConfig::default();
        StoppingRule {
            warmup: d.warmup,
            batch_size: d.batch_size,
            min_batches: d.min_batches,
            max_batches: d.max_batches,
            ci_ratio: d.ci_ratio,
            max_in_flight_per_node: d.max_in_flight_per_node,
        }
    }
}

/// The fault section of a spec: link fault rates for
/// [`ExperimentSpec::run_fault_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Link fault rates (0.0 = healthy baseline).
    pub rates: Vec<f64>,
    /// Messages submitted per rate.
    pub messages: usize,
    /// Whether masks keep the surviving network connected.
    pub keep_connected: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        let d = FaultSweepConfig::default();
        FaultSpec {
            rates: d.fault_rates,
            messages: d.messages,
            keep_connected: d.keep_connected,
        }
    }
}

/// The streaming section of a spec: run every point through the
/// bounded-memory open-loop runner
/// ([`run_dynamic_stream`], DESIGN.md §16) instead of the
/// materializing one. Memory stays O(in-flight) regardless of how many
/// messages the run injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Stop after injecting this many multicasts per point (the
    /// million-multicast axis). `None` keeps the spec's batch-means
    /// stopping rule, making streaming a pure memory optimization.
    pub messages: Option<u64>,
    /// Stop once the generators' clock passes this simulated time (ns)
    /// — the wall-of-simulated-time axis (`mcast run --duration-ms`).
    /// Composes with `messages`: whichever bound trips first stops the
    /// point. Zero is rejected by [`ExperimentSpec::validate`].
    pub duration_ns: Option<u64>,
    /// Backpressure ceiling on in-flight messages per point.
    pub max_in_flight: usize,
}

impl Default for StreamSpec {
    fn default() -> Self {
        let d = StreamConfig::default();
        StreamSpec {
            messages: None,
            duration_ns: None,
            max_in_flight: d.max_in_flight,
        }
    }
}

impl StreamSpec {
    /// Resolves to the runner-level [`StreamConfig`].
    pub fn to_config(&self) -> StreamConfig {
        StreamConfig {
            messages: self.messages,
            duration_ns: self.duration_ns,
            max_in_flight: self.max_in_flight,
        }
    }
}

/// A declarative experiment: everything one sweep needs, as data.
///
/// Seeds are serialized as JSON numbers, so they should stay below
/// 2^53 (every seed the harnesses generate does).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (used in reports and artifact names).
    pub name: String,
    /// The network.
    pub topology: TopoSpec,
    /// Routing schemes to sweep.
    pub schemes: Vec<SchemeId>,
    /// Traffic pattern.
    pub pattern: PatternSpec,
    /// Load grid: mean interarrival per node, in µs (lower = heavier).
    pub loads_us: Vec<f64>,
    /// Destinations per multicast.
    pub destinations: usize,
    /// Independent replications per (scheme, load) point.
    pub replications: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Stopping rule.
    pub stopping: StoppingRule,
    /// Run every scheme on a network with at least this many channel
    /// classes (the Fig 7.8 double-channel level playing field).
    pub channel_classes: Option<u8>,
    /// Give branch nodes virtual-cut-through replication buffers (one
    /// message worth) instead of single-flit lock-step buffers.
    pub vct_buffers: bool,
    /// Worker lanes for single-run parallelism inside each engine
    /// (DESIGN.md §15). `1` — the default, omitted from JSON — is the
    /// serial event loop; `N > 1` is bit-identical to serial, so this
    /// knob never changes results, only wall-clock.
    pub engine_jobs: usize,
    /// Optional streaming section: bounded-memory open-loop runs.
    pub stream: Option<StreamSpec>,
    /// Optional fault sweep section.
    pub fault: Option<FaultSpec>,
}

impl ExperimentSpec {
    /// A spec with the §7.2 defaults on the given topology.
    pub fn new(name: &str, topology: TopoSpec) -> ExperimentSpec {
        ExperimentSpec {
            name: name.to_string(),
            topology,
            schemes: vec![SchemeId::named("dual-path")],
            pattern: PatternSpec::Uniform,
            loads_us: vec![600.0, 450.0, 350.0],
            destinations: 10,
            replications: 3,
            seed: 7,
            stopping: StoppingRule::default(),
            channel_classes: None,
            vct_buffers: false,
            engine_jobs: 1,
            stream: None,
            fault: None,
        }
    }

    /// The resolved traffic pattern (hot-spot node from the topology).
    pub fn traffic_pattern(&self) -> TrafficPattern {
        self.pattern.resolve(&self.topology)
    }

    /// The per-point dynamic configuration shared by every cell of the
    /// sweep grid (load and per-replication seed vary per point).
    pub fn base_config(&self) -> DynamicConfig {
        let mut cfg = DynamicConfig {
            destinations: self.destinations,
            warmup: self.stopping.warmup,
            batch_size: self.stopping.batch_size,
            min_batches: self.stopping.min_batches,
            max_batches: self.stopping.max_batches,
            ci_ratio: self.stopping.ci_ratio,
            max_in_flight_per_node: self.stopping.max_in_flight_per_node,
            seed: self.seed,
            pattern: self.traffic_pattern(),
            engine_jobs: self.engine_jobs,
            ..DynamicConfig::default()
        };
        if self.vct_buffers {
            cfg.sim.buffer_flits = cfg.sim.flits_per_message();
        }
        cfg
    }

    /// The sweep grid configuration.
    pub fn sweep_config(&self) -> SweepConfig {
        SweepConfig {
            base: self.base_config(),
            loads_ns: self.loads_us.iter().map(|&us| us * 1000.0).collect(),
            replications: self.replications,
            stream: self.stream.map(|s| s.to_config()),
        }
    }

    /// Builds every scheme's router (applying the `channel_classes`
    /// override), pairing each with its canonical scheme label.
    pub fn build_routers(&self) -> Result<Vec<(String, SchemeRouter)>, RegistryError> {
        self.schemes
            .iter()
            .map(|scheme| {
                let router = build_router(&self.topology, scheme)?;
                let router: SchemeRouter = match self.channel_classes {
                    Some(classes) => Box::new(ClassOverrideRouter::new(router, classes)),
                    None => router,
                };
                Ok((scheme.to_string(), router))
            })
            .collect()
    }

    /// Checks the spec is executable without running anything: every
    /// (topology, scheme) pair resolves, the grids are non-empty, and
    /// the parameters are in range. This is `mcast run --dry-run`.
    pub fn validate(&self) -> Result<(), RegistryError> {
        if self.schemes.is_empty() {
            return Err(err("spec has no schemes"));
        }
        if self.loads_us.is_empty() {
            return Err(err("spec has an empty load grid"));
        }
        if let Some(&bad) = self.loads_us.iter().find(|&&l| l <= 0.0 || l.is_nan()) {
            return Err(err(format!("non-positive load {bad} µs")));
        }
        if self.replications == 0 {
            return Err(err("replications must be at least 1"));
        }
        if self.engine_jobs == 0 {
            return Err(err("engine_jobs must be at least 1"));
        }
        if let Some(stream) = &self.stream {
            if stream.max_in_flight == 0 {
                return Err(err("stream.max_in_flight must be at least 1"));
            }
            if stream.messages == Some(0) {
                return Err(err("stream.messages must be at least 1"));
            }
            if stream.duration_ns == Some(0) {
                return Err(err("stream.duration_ns must be at least 1"));
            }
        }
        if self.destinations == 0 || self.destinations >= self.topology.num_nodes() {
            return Err(err(format!(
                "destinations {} out of range for {} ({} nodes)",
                self.destinations,
                self.topology,
                self.topology.num_nodes()
            )));
        }
        self.build_routers()?;
        if let Some(fault) = &self.fault {
            if fault.rates.is_empty() {
                return Err(err("fault section has no rates"));
            }
            if let Some(&bad) = fault.rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
                return Err(err(format!("fault rate {bad} out of [0, 1]")));
            }
            if fault.messages == 0 {
                return Err(err("fault section needs at least one message"));
            }
            for scheme in &self.schemes {
                build_fault_router(&self.topology, scheme)?;
            }
        }
        Ok(())
    }

    /// Runs one (scheme, load, replication) cell through `run_dynamic`,
    /// with the same derived seed the sweep grid would use for it.
    pub fn run_point(
        &self,
        scheme: &SchemeId,
        load_us: f64,
        replication: usize,
    ) -> Result<DynamicResult, RegistryError> {
        let scheme_idx = self
            .schemes
            .iter()
            .position(|s| s == scheme)
            .ok_or_else(|| err(format!("scheme {scheme} not in spec {:?}", self.name)))?;
        let router = match self.channel_classes {
            Some(classes) => Box::new(ClassOverrideRouter::new(
                build_router(&self.topology, scheme)?,
                classes,
            )) as SchemeRouter,
            None => build_router(&self.topology, scheme)?,
        };
        let load_idx = self
            .loads_us
            .iter()
            .position(|&l| l == load_us)
            .ok_or_else(|| err(format!("load {load_us} µs not in spec grid")))?;
        let index = (scheme_idx * self.loads_us.len() + load_idx) * self.replications + replication;
        let mut cfg = self.base_config();
        cfg.mean_interarrival_ns = load_us * 1000.0;
        cfg.seed = replication_seed(self.seed, index as u64);
        let built = self.topology.build();
        Ok(match &self.stream {
            Some(stream) => {
                run_dynamic_stream(built.as_dyn(), router.as_ref(), &cfg, &stream.to_config())
            }
            None => run_dynamic(built.as_dyn(), router.as_ref(), &cfg),
        })
    }

    /// Runs the whole sweep grid on `jobs` threads. Rows come back in
    /// canonical point order, bit-identical for any job count.
    pub fn run_sweep(&self, jobs: usize) -> Result<Vec<SweepRow>, RegistryError> {
        self.run_sweep_with_budget(jobs, None)
    }

    /// [`ExperimentSpec::run_sweep`] under an optional cooperative
    /// execution budget. The budget is shared across every engine the
    /// sweep creates, so it bounds the *total* step work of the whole
    /// grid and lets a supervisor cancel the run from another thread
    /// (the `mcast serve` deadline path). Rows whose runs were cut
    /// short carry `result.budget_exhausted = true`.
    pub fn run_sweep_with_budget(
        &self,
        jobs: usize,
        budget: Option<mcast_sim::engine::RunBudget>,
    ) -> Result<Vec<SweepRow>, RegistryError> {
        self.validate()?;
        let routers = self.build_routers()?;
        let named: Vec<(&str, &(dyn MulticastRouter + Sync))> = routers
            .iter()
            .map(|(name, r)| (name.as_str(), r.as_ref() as &(dyn MulticastRouter + Sync)))
            .collect();
        let built = self.topology.build();
        let mut cfg = self.sweep_config();
        cfg.base.budget = budget;
        Ok(run_dynamic_sweep(built.as_dyn(), &named, &cfg, jobs))
    }

    /// Runs the fault sweep for every scheme in the spec (requires a
    /// `fault` section), concatenating rows scheme-major.
    pub fn run_fault_sweep(&self) -> Result<Vec<FaultSweepRow>, RegistryError> {
        let fault = self
            .fault
            .as_ref()
            .ok_or_else(|| err(format!("spec {:?} has no fault section", self.name)))?;
        self.validate()?;
        let cfg = FaultSweepConfig {
            fault_rates: fault.rates.clone(),
            messages: fault.messages,
            destinations: self.destinations,
            seed: self.seed,
            keep_connected: fault.keep_connected,
            ..FaultSweepConfig::default()
        };
        let built = self.topology.build();
        let mut rows = Vec::new();
        for scheme in &self.schemes {
            let router: Box<dyn FaultMulticastRouter + Send + Sync> =
                build_fault_router(&self.topology, scheme)?;
            rows.extend(run_fault_sweep(built.as_dyn(), router.as_ref(), &cfg));
        }
        Ok(rows)
    }

    /// Serializes canonically: fixed key order, optional sections
    /// omitted when default — so parse → serialize is byte-identical.
    pub fn to_json(&self) -> String {
        let nums = |xs: &[f64]| Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect());
        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("topology".into(), Json::Str(self.topology.to_string())),
            (
                "schemes".into(),
                Json::Arr(
                    self.schemes
                        .iter()
                        .map(|s| Json::Str(s.to_string()))
                        .collect(),
                ),
            ),
            ("pattern".into(), Json::from(self.pattern.as_str())),
            ("loads_us".into(), nums(&self.loads_us)),
            ("destinations".into(), Json::from(self.destinations)),
            ("replications".into(), Json::from(self.replications)),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "stopping".into(),
                Json::Obj(vec![
                    ("warmup".into(), Json::from(self.stopping.warmup)),
                    ("batch_size".into(), Json::from(self.stopping.batch_size)),
                    ("min_batches".into(), Json::from(self.stopping.min_batches)),
                    ("max_batches".into(), Json::from(self.stopping.max_batches)),
                    ("ci_ratio".into(), Json::Num(self.stopping.ci_ratio)),
                    (
                        "max_in_flight_per_node".into(),
                        Json::from(self.stopping.max_in_flight_per_node),
                    ),
                ]),
            ),
        ];
        if let Some(classes) = self.channel_classes {
            fields.push(("channel_classes".into(), Json::from(classes as usize)));
        }
        if self.vct_buffers {
            fields.push(("vct_buffers".into(), Json::Bool(true)));
        }
        if self.engine_jobs != 1 {
            fields.push(("engine_jobs".into(), Json::from(self.engine_jobs)));
        }
        if let Some(stream) = &self.stream {
            let mut sf: Vec<(String, Json)> = Vec::new();
            if let Some(m) = stream.messages {
                sf.push(("messages".into(), Json::Num(m as f64)));
            }
            if let Some(d) = stream.duration_ns {
                sf.push(("duration_ns".into(), Json::Num(d as f64)));
            }
            if stream.max_in_flight != StreamSpec::default().max_in_flight {
                sf.push(("max_in_flight".into(), Json::from(stream.max_in_flight)));
            }
            fields.push(("stream".into(), Json::Obj(sf)));
        }
        if let Some(fault) = &self.fault {
            fields.push((
                "fault".into(),
                Json::Obj(vec![
                    ("rates".into(), nums(&fault.rates)),
                    ("messages".into(), Json::from(fault.messages)),
                    ("keep_connected".into(), Json::Bool(fault.keep_connected)),
                ]),
            ));
        }
        let mut out = Json::Obj(fields).to_json();
        out.push('\n');
        out
    }

    /// Parses a spec from JSON, rejecting unknown keys (a typo'd knob
    /// silently ignored would un-reproduce the experiment).
    pub fn from_json(text: &str) -> Result<ExperimentSpec, RegistryError> {
        let v = Json::parse(text).map_err(|e| err(format!("spec JSON: {e}")))?;
        for key in v.keys() {
            if ![
                "name",
                "topology",
                "schemes",
                "pattern",
                "loads_us",
                "destinations",
                "replications",
                "seed",
                "stopping",
                "channel_classes",
                "vct_buffers",
                "engine_jobs",
                "stream",
                "fault",
            ]
            .contains(&key)
            {
                return Err(err(format!("unknown spec field {key:?}")));
            }
        }
        let str_field = |k: &str| -> Result<&str, RegistryError> {
            v.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| err(format!("spec field {k:?} missing or not a string")))
        };
        let usize_field = |obj: &Json, k: &str, default: usize| -> Result<usize, RegistryError> {
            match obj.get(k) {
                None => Ok(default),
                Some(x) => {
                    let n = x
                        .as_num()
                        .ok_or_else(|| err(format!("spec field {k:?} not a number")))?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(err(format!("spec field {k:?} must be a whole number")));
                    }
                    Ok(n as usize)
                }
            }
        };
        let nums_field = |obj: &Json, k: &str| -> Result<Vec<f64>, RegistryError> {
            obj.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| err(format!("spec field {k:?} missing or not an array")))?
                .iter()
                .map(|x| {
                    x.as_num()
                        .ok_or_else(|| err(format!("non-number in {k:?}")))
                })
                .collect()
        };

        let topology = TopoSpec::parse(str_field("topology")?)?;
        let schemes = v
            .get("schemes")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("spec field \"schemes\" missing or not an array"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .ok_or_else(|| err("non-string in \"schemes\""))
                    .and_then(SchemeId::parse)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pattern = match v.get("pattern") {
            None => PatternSpec::Uniform,
            Some(p) => PatternSpec::parse(
                p.as_str()
                    .ok_or_else(|| err("spec field \"pattern\" not a string"))?,
            )?,
        };
        let default_stop = StoppingRule::default();
        let stopping = match v.get("stopping") {
            None => default_stop,
            Some(s) => {
                for key in s.keys() {
                    if ![
                        "warmup",
                        "batch_size",
                        "min_batches",
                        "max_batches",
                        "ci_ratio",
                        "max_in_flight_per_node",
                    ]
                    .contains(&key)
                    {
                        return Err(err(format!("unknown stopping field {key:?}")));
                    }
                }
                StoppingRule {
                    warmup: usize_field(s, "warmup", default_stop.warmup)?,
                    batch_size: usize_field(s, "batch_size", default_stop.batch_size)?,
                    min_batches: usize_field(s, "min_batches", default_stop.min_batches)?,
                    max_batches: usize_field(s, "max_batches", default_stop.max_batches)?,
                    ci_ratio: match s.get("ci_ratio") {
                        None => default_stop.ci_ratio,
                        Some(x) => x
                            .as_num()
                            .ok_or_else(|| err("stopping field \"ci_ratio\" not a number"))?,
                    },
                    max_in_flight_per_node: usize_field(
                        s,
                        "max_in_flight_per_node",
                        default_stop.max_in_flight_per_node,
                    )?,
                }
            }
        };
        let stream = match v.get("stream") {
            None => None,
            Some(sobj) => {
                for key in sobj.keys() {
                    if !["messages", "duration_ns", "max_in_flight"].contains(&key) {
                        return Err(err(format!("unknown stream field {key:?}")));
                    }
                }
                let positive_u64 = |k: &str| -> Result<Option<u64>, RegistryError> {
                    match sobj.get(k) {
                        None => Ok(None),
                        Some(x) => {
                            let n = x
                                .as_num()
                                .ok_or_else(|| err(format!("stream field {k:?} not a number")))?;
                            if n < 1.0 || n.fract() != 0.0 {
                                return Err(err(format!(
                                    "stream field {k:?} must be a positive whole number"
                                )));
                            }
                            Ok(Some(n as u64))
                        }
                    }
                };
                let default_stream = StreamSpec::default();
                Some(StreamSpec {
                    messages: positive_u64("messages")?,
                    duration_ns: positive_u64("duration_ns")?,
                    max_in_flight: usize_field(
                        sobj,
                        "max_in_flight",
                        default_stream.max_in_flight,
                    )?,
                })
            }
        };
        let fault = match v.get("fault") {
            None => None,
            Some(fobj) => {
                for key in fobj.keys() {
                    if !["rates", "messages", "keep_connected"].contains(&key) {
                        return Err(err(format!("unknown fault field {key:?}")));
                    }
                }
                let default_fault = FaultSpec::default();
                Some(FaultSpec {
                    rates: nums_field(fobj, "rates")?,
                    messages: usize_field(fobj, "messages", default_fault.messages)?,
                    keep_connected: match fobj.get("keep_connected") {
                        None => default_fault.keep_connected,
                        Some(b) => b
                            .as_bool()
                            .ok_or_else(|| err("fault field \"keep_connected\" not a bool"))?,
                    },
                })
            }
        };
        let channel_classes = match usize_field(&v, "channel_classes", 0)? {
            0 => None,
            c if c <= u8::MAX as usize => Some(c as u8),
            c => return Err(err(format!("channel_classes {c} out of range"))),
        };
        Ok(ExperimentSpec {
            name: str_field("name")?.to_string(),
            topology,
            schemes,
            pattern,
            loads_us: nums_field(&v, "loads_us")?,
            destinations: usize_field(&v, "destinations", 10)?,
            replications: usize_field(&v, "replications", 3)?,
            seed: usize_field(&v, "seed", 7)? as u64,
            stopping,
            channel_classes,
            vct_buffers: match v.get("vct_buffers") {
                None => false,
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| err("spec field \"vct_buffers\" not a bool"))?,
            },
            engine_jobs: match usize_field(&v, "engine_jobs", 1)? {
                0 => return Err(err("engine_jobs must be at least 1")),
                j => j,
            },
            stream,
            fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new("sample", TopoSpec::parse("mesh:4x4").unwrap());
        spec.schemes = vec![
            SchemeId::named("dual-path"),
            SchemeId::parse("vc-multi-path:2").unwrap(),
        ];
        spec.loads_us = vec![800.0, 500.0];
        spec.destinations = 4;
        spec.replications = 2;
        spec.stopping = StoppingRule {
            warmup: 20,
            batch_size: 10,
            min_batches: 2,
            max_batches: 3,
            ..StoppingRule::default()
        };
        spec
    }

    #[test]
    fn checked_in_example_spec_is_canonical() {
        // The README's `mcast run --spec` example must stay parseable
        // and byte-canonical (what `to_json` would emit).
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/spec_fig7_5.json"
        );
        let text = std::fs::read_to_string(path).expect("examples/spec_fig7_5.json exists");
        let spec = ExperimentSpec::from_json(&text).expect("example spec parses");
        spec.validate().expect("example spec validates");
        assert_eq!(spec.to_json(), text, "example spec is canonical JSON");
    }

    #[test]
    fn checked_in_stream_spec_is_canonical() {
        // The README's million-multicast quickstart spec must stay
        // parseable, byte-canonical, and actually streaming-shaped:
        // the 64×64 mesh with a ≥ 1 000 000-message bound and the
        // default backpressure cap.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/spec_stream_64x64.json"
        );
        let text = std::fs::read_to_string(path).expect("examples/spec_stream_64x64.json exists");
        let spec = ExperimentSpec::from_json(&text).expect("stream example spec parses");
        spec.validate().expect("stream example spec validates");
        let stream = spec.stream.as_ref().expect("spec has a stream section");
        assert!(stream.messages.expect("message bound set") >= 1_000_000);
        assert_eq!(stream.max_in_flight, StreamSpec::default().max_in_flight);
        assert_eq!(spec.topology.to_string(), "mesh:64x64");
        assert_eq!(
            spec.to_json(),
            text,
            "stream example spec is canonical JSON"
        );
    }

    #[test]
    fn checked_in_modern_spec_is_canonical() {
        // The README's "1990 vs modern" quickstart spec must stay
        // parseable and byte-canonical, and must actually exercise the
        // modern axes: a modern competitor scheme next to dual-path,
        // the bursty phase pattern, and a duration-bounded stream.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/spec_modern_vs_1990.json"
        );
        let text = std::fs::read_to_string(path).expect("examples/spec_modern_vs_1990.json exists");
        let spec = ExperimentSpec::from_json(&text).expect("modern example spec parses");
        spec.validate().expect("modern example spec validates");
        for scheme in ["dual-path", "dpm", "binomial"] {
            assert!(
                spec.schemes.iter().any(|s| s.name == scheme),
                "modern example spec is missing {scheme}"
            );
        }
        assert_eq!(spec.pattern, PatternSpec::Bursty);
        let stream = spec.stream.as_ref().expect("spec has a stream section");
        assert!(stream.duration_ns.expect("duration bound set") >= 1_000_000);
        assert_eq!(
            spec.to_json(),
            text,
            "modern example spec is canonical JSON"
        );
    }

    #[test]
    fn checked_in_custom_graph_spec_is_canonical() {
        // The README's custom-topology quickstart spec must stay
        // parseable and byte-canonical, and must resolve to a Custom
        // topology whose Display round-trips the source string.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/spec_custom_graph.json"
        );
        let text = std::fs::read_to_string(path).expect("examples/spec_custom_graph.json exists");
        let spec = ExperimentSpec::from_json(&text).expect("custom example spec parses");
        spec.validate().expect("custom example spec validates");
        assert!(matches!(spec.topology, TopoSpec::Custom { .. }));
        assert_eq!(spec.topology.to_string(), "custom:lmesh:4x4x2");
        assert_eq!(
            spec.to_json(),
            text,
            "custom example spec is canonical JSON"
        );
    }

    #[test]
    fn custom_topology_specs_round_trip_byte_identically() {
        // A Custom topology serializes as its canonical `custom:<src>`
        // string and re-parses to a structurally equal graph.
        let mut spec = ExperimentSpec::new("custom", TopoSpec::parse("custom:rand:10x3").unwrap());
        spec.schemes = vec![SchemeId::named("updown-mc"), SchemeId::named("updown-tree")];
        spec.loads_us = vec![400.0];
        spec.destinations = 3;
        spec.replications = 1;
        spec.validate().unwrap();
        let text = spec.to_json();
        assert!(text.contains("\"custom:rand:10x3\""));
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back, spec, "custom topology value drift");
        assert_eq!(back.to_json(), text, "custom topology byte drift");
        // Unknown spec keys are still rejected alongside a custom
        // topology…
        assert!(ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "custom:rand:10x3", "schemes": ["updown-mc"],
                "loads_us": [600], "destinations": 3, "graph": "extra"}"#,
        )
        .is_err());
        // …and a bad custom source names itself in the error.
        let e = ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "custom:nope", "schemes": ["updown-mc"],
                "loads_us": [600], "destinations": 3}"#,
        )
        .unwrap_err();
        assert!(e.0.contains("custom"), "unreadable error: {}", e.0);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut spec = sample();
        spec.pattern = PatternSpec::Hotspot;
        spec.channel_classes = Some(2);
        spec.vct_buffers = true;
        spec.stream = Some(StreamSpec {
            messages: Some(1_000_000),
            duration_ns: None,
            max_in_flight: 2048,
        });
        spec.fault = Some(FaultSpec {
            rates: vec![0.0, 0.05],
            messages: 16,
            keep_connected: true,
        });
        let text = spec.to_json();
        mcast_obs::validate_json(&text).expect("canonical spec JSON validates");
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text, "serialize→parse→serialize drifted");
    }

    #[test]
    fn engine_jobs_round_trips_and_default_is_omitted() {
        let mut spec = sample();
        assert!(
            !spec.to_json().contains("engine_jobs"),
            "default engine_jobs=1 must stay out of canonical JSON"
        );
        spec.engine_jobs = 9;
        let text = spec.to_json();
        assert!(text.contains("engine_jobs"));
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text, "engine_jobs byte drift");
        // 9 appears nowhere else in the sample spec, so this targets
        // exactly the engine_jobs value.
        assert!(
            ExperimentSpec::from_json(&text.replace('9', "0")).is_err(),
            "engine_jobs: 0 must be rejected"
        );
    }

    #[test]
    fn stream_section_round_trips_and_dispatches() {
        // A default stream section serializes as the empty object and
        // round-trips byte-identically.
        let mut spec = sample();
        spec.stream = Some(StreamSpec::default());
        let text = spec.to_json();
        assert!(text.contains("\"stream\": {}"), "defaults elided: {text}");
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
        // Invalid values are rejected with readable errors.
        spec.stream = Some(StreamSpec {
            messages: Some(0),
            duration_ns: None,
            max_in_flight: 64,
        });
        assert!(spec.validate().is_err());
        assert!(ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "mesh:4x4", "schemes": ["dual-path"],
                "loads_us": [600], "destinations": 3, "stream": {"mesages": 10}}"#,
        )
        .is_err());
        // A message-bounded stream point injects exactly that many
        // multicasts and resolves them all.
        spec.stream = Some(StreamSpec {
            messages: Some(400),
            duration_ns: None,
            max_in_flight: 64,
        });
        spec.validate().unwrap();
        let r = spec
            .run_point(&SchemeId::named("dual-path"), 500.0, 0)
            .unwrap();
        assert_eq!(r.completed, 400);
        assert!(r.peak_in_flight <= 64);
    }

    #[test]
    fn stream_duration_round_trips_and_rejects_zero() {
        // duration_ns is a canonical spec field (`mcast run
        // --duration-ms`): it must survive to_json → from_json →
        // to_json byte-identically, compose with a message bound, and
        // reject zero at both the validate and parse layers.
        let mut spec = sample();
        spec.stream = Some(StreamSpec {
            messages: Some(200),
            duration_ns: Some(5_000_000),
            max_in_flight: 64,
        });
        spec.validate().unwrap();
        let text = spec.to_json();
        assert!(text.contains("\"duration_ns\": 5000000"), "{text}");
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
        // Zero is always a mistake: a zero-length run measures nothing.
        spec.stream = Some(StreamSpec {
            messages: None,
            duration_ns: Some(0),
            max_in_flight: 64,
        });
        let err = spec.validate().unwrap_err();
        assert!(err.0.contains("duration_ns"), "{}", err.0);
        assert!(ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "mesh:4x4", "schemes": ["dual-path"],
                "loads_us": [600], "destinations": 3, "stream": {"duration_ns": 0}}"#,
        )
        .is_err());
        // A duration-bounded point stops injecting at the wall and
        // drains: everything injected resolves.
        spec.stream = Some(StreamSpec {
            messages: None,
            duration_ns: Some(2_000_000),
            max_in_flight: 64,
        });
        spec.validate().unwrap();
        let r = spec
            .run_point(&SchemeId::named("dual-path"), 500.0, 0)
            .unwrap();
        assert!(r.completed > 0, "duration-bounded stream injected nothing");
    }

    #[test]
    fn minimal_json_fills_defaults() {
        let spec = ExperimentSpec::from_json(
            r#"{"name": "mini", "topology": "cube:3",
                "schemes": ["multi-path"], "loads_us": [900], "destinations": 4}"#,
        )
        .unwrap();
        assert_eq!(spec.pattern, PatternSpec::Uniform);
        assert_eq!(spec.destinations, 4);
        assert_eq!(spec.replications, 3);
        assert_eq!(spec.stopping, StoppingRule::default());
        assert!(spec.fault.is_none());
        spec.validate().unwrap();
    }

    #[test]
    fn unknown_fields_rejected() {
        assert!(ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "mesh:4x4", "schemes": ["dual-path"],
                "loads_us": [600], "repliactions": 3}"#,
        )
        .is_err());
        assert!(ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "mesh:4x4", "schemes": ["dual-path"],
                "loads_us": [600], "stopping": {"warmpu": 5}}"#,
        )
        .is_err());
    }

    /// Fuzz satellite (ISSUE 5): seeded random valid specs must
    /// re-serialize byte-identically through
    /// `to_json → from_json → to_json` — the reproducer specs the
    /// conformance harness emits depend on this canonicity.
    #[test]
    fn random_valid_specs_round_trip_byte_identically() {
        use mcast_sim::registry::schemes_for;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EED_5EED);
        let topologies = [
            "mesh:4x4",
            "mesh:5x3",
            "mesh:3x3x2",
            "cube:3",
            "cube:4",
            "kary:4x2",
            "torus:3x2",
            "custom:rand:10x3",
            "custom:lmesh:4x4x2",
            "custom:ftree:3x1",
        ];
        let loads = [2.0, 10.0, 60.0, 450.0, 600.0, 800.0];
        let rates = [0.0, 0.02, 0.05, 0.1, 0.25];
        for case in 0..200 {
            let topo = TopoSpec::parse(topologies[rng.gen_range(0..topologies.len())]).unwrap();
            let n = topo.num_nodes();
            let mut schemes = schemes_for(&topo);
            let keep = rng.gen_range(1..=schemes.len());
            while schemes.len() > keep {
                schemes.remove(rng.gen_range(0..schemes.len()));
            }
            let mut spec = ExperimentSpec::new(&format!("fuzz-{case}"), topo);
            spec.schemes = schemes;
            spec.pattern = if rng.gen_range(0..2u32) == 0 {
                PatternSpec::Uniform
            } else {
                PatternSpec::Hotspot
            };
            spec.loads_us = (0..rng.gen_range(1..4usize))
                .map(|_| loads[rng.gen_range(0..loads.len())])
                .collect();
            spec.destinations = rng.gen_range(1..n);
            spec.replications = rng.gen_range(1..5);
            spec.seed = rng.gen_range(0..1u64 << 48);
            spec.stopping = StoppingRule {
                warmup: rng.gen_range(0..100),
                batch_size: rng.gen_range(1..50),
                min_batches: rng.gen_range(1..5),
                max_batches: rng.gen_range(5..20),
                ..StoppingRule::default()
            };
            spec.vct_buffers = rng.gen_range(0..2u32) == 0;
            if rng.gen_range(0..2u32) == 0 {
                spec.fault = Some(FaultSpec {
                    rates: (0..rng.gen_range(1..4usize))
                        .map(|_| rates[rng.gen_range(0..rates.len())])
                        .collect(),
                    messages: rng.gen_range(1..64),
                    keep_connected: rng.gen_range(0..2u32) == 0,
                });
            }
            // New axes draw after every existing one so earlier cases
            // keep their historical shapes.
            if rng.gen_range(0..2u32) == 0 {
                spec.stream = Some(StreamSpec {
                    messages: if rng.gen_range(0..2u32) == 0 {
                        Some(rng.gen_range(1..1_000_000u64))
                    } else {
                        None
                    },
                    duration_ns: None,
                    max_in_flight: rng.gen_range(1..10_000),
                });
            }
            spec.validate()
                .unwrap_or_else(|e| panic!("case {case} should be valid: {e}"));
            let text = spec.to_json();
            mcast_obs::validate_json(&text)
                .unwrap_or_else(|e| panic!("case {case}: invalid JSON: {e}"));
            let back = ExperimentSpec::from_json(&text)
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, spec, "case {case}: value drift");
            assert_eq!(back.to_json(), text, "case {case}: byte drift");
        }
    }

    #[test]
    fn unknown_keys_and_zero_dims_rejected_readably() {
        // A typo'd knob names itself in the error…
        let e = ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "mesh:4x4", "schemes": ["dual-path"],
                "loads_us": [600], "destinations": 3, "frobnicate": 1}"#,
        )
        .unwrap_err();
        assert!(e.0.contains("frobnicate"), "unreadable error: {}", e.0);
        // …and a zero-sized dimension says what is wrong, not just that
        // parsing failed.
        let e = ExperimentSpec::from_json(
            r#"{"name": "x", "topology": "mesh:0x4", "schemes": ["dual-path"],
                "loads_us": [600], "destinations": 3}"#,
        )
        .unwrap_err();
        assert!(
            e.0.contains("zero-sized dimension"),
            "unreadable error: {}",
            e.0
        );
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut s = sample();
        s.schemes.clear();
        assert!(s.validate().is_err());
        let mut s = sample();
        s.loads_us = vec![-10.0];
        assert!(s.validate().is_err());
        let mut s = sample();
        s.destinations = 16; // == num_nodes on 4x4
        assert!(s.validate().is_err());
        let mut s = sample();
        s.schemes = vec![SchemeId::named("octant-tree")]; // 3D-only
        assert!(s.validate().is_err());
        sample().validate().unwrap();
    }

    #[test]
    fn spec_sweep_matches_direct_sweep_row_for_row() {
        let spec = sample();
        let rows = spec.run_sweep(2).unwrap();
        assert_eq!(rows.len(), 2 * 2 * 2);
        // The same grid, hand-built the pre-spec way.
        let routers = spec.build_routers().unwrap();
        let named: Vec<(&str, &(dyn MulticastRouter + Sync))> = routers
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_ref() as &(dyn MulticastRouter + Sync)))
            .collect();
        let built = spec.topology.build();
        let direct = run_dynamic_sweep(built.as_dyn(), &named, &spec.sweep_config(), 1);
        for (a, b) in rows.iter().zip(&direct) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.result.mean_latency_us, b.result.mean_latency_us);
            assert_eq!(a.result.sim_time_ns, b.result.sim_time_ns);
        }
    }

    #[test]
    fn run_point_matches_sweep_cell() {
        let spec = sample();
        let rows = spec.run_sweep(1).unwrap();
        let scheme = SchemeId::parse("vc-multi-path:2").unwrap();
        let point = spec.run_point(&scheme, 500.0, 1).unwrap();
        let row = rows
            .iter()
            .find(|r| {
                r.point.scheme == "vc-multi-path:2"
                    && r.point.mean_interarrival_ns == 500_000.0
                    && r.point.replication == 1
            })
            .expect("cell exists");
        assert_eq!(point.mean_latency_us, row.result.mean_latency_us);
        assert_eq!(point.sim_time_ns, row.result.sim_time_ns);
    }

    #[test]
    fn fault_sweep_runs_from_spec_on_all_topologies() {
        for topo in ["mesh:4x4", "mesh:3x3x2", "cube:3", "torus:3x2"] {
            let mut spec = ExperimentSpec::new("fault", TopoSpec::parse(topo).unwrap());
            spec.schemes = vec![SchemeId::named("dual-path")];
            spec.destinations = 3;
            spec.fault = Some(FaultSpec {
                rates: vec![0.0, 0.1],
                messages: 8,
                keep_connected: true,
            });
            let rows = spec
                .run_fault_sweep()
                .unwrap_or_else(|e| panic!("{topo}: {e}"));
            assert_eq!(rows.len(), 2, "{topo}");
            assert_eq!(rows[0].delivery_ratio, 1.0, "{topo} healthy baseline");
        }
    }

    #[test]
    fn hotspot_pattern_resolves_to_topology_hotspot() {
        let mut spec = sample();
        spec.pattern = PatternSpec::Hotspot;
        match spec.traffic_pattern() {
            TrafficPattern::Hotspot { node } => {
                assert_eq!(node, spec.topology.hotspot_node())
            }
            other => panic!("expected hotspot, got {other:?}"),
        }
    }
}
