//! Statistics for the performance study: sample means and the *batch
//! means* method of §7.2 (Law & Kelton [58]) with Student-t 95%
//! confidence intervals.
//!
//! "All simulations were executed until the confidence interval was
//! smaller than 5 percent of the mean, using 95 percent confidence
//! intervals" — [`BatchMeans`] reproduces exactly that stopping rule.

/// Two-sided 95% Student-t critical values for small degrees of freedom;
/// 1.96 beyond the table.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% t critical value for `df` degrees of freedom.
pub fn t_value_95(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T_95.len() {
        T_95[df - 1]
    } else {
        1.96
    }
}

/// Running mean/variance accumulator: a thin wrapper over the exact
/// Welford [`mcast_obs::Summary`] (the single implementation shared
/// across the workspace), adding the Student-t confidence interval the
/// §7.2 stopping rule needs.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    inner: mcast_obs::Summary,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.inner.push(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        self.inner.variance()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.inner.min()
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.inner.max()
    }

    /// Folds another accumulator into this one (exact Welford combine,
    /// see [`mcast_obs::Summary::merge`]). The parallel sweep runner
    /// reduces per-task accumulators in task order with this, so its
    /// aggregates are bit-identical to a serial reduction.
    pub fn merge(&mut self, other: &Accumulator) {
        self.inner.merge(&other.inner);
    }

    /// Half-width of the 95% confidence interval of the mean.
    pub fn ci_half_width_95(&self) -> f64 {
        let n = self.inner.count();
        if n < 2 {
            return f64::INFINITY;
        }
        t_value_95(n - 1) * (self.variance() / n as f64).sqrt()
    }
}

/// Batch-means estimator: observations are grouped into fixed-size
/// batches; the batch averages are treated as (approximately) independent
/// samples for the confidence interval.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: Accumulator,
    batches: Accumulator,
}

impl BatchMeans {
    /// Creates a batch-means estimator with the given batch size.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size >= 1);
        BatchMeans {
            batch_size,
            current: Accumulator::new(),
            batches: Accumulator::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Accumulator::new();
        }
    }

    /// Completed batches so far.
    pub fn batches(&self) -> usize {
        self.batches.count()
    }

    /// Total observations consumed (including the unfinished batch).
    pub fn observations(&self) -> usize {
        self.batches.count() * self.batch_size + self.current.count()
    }

    /// Grand mean over completed batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// 95% CI half-width over the batch means.
    pub fn ci_half_width_95(&self) -> f64 {
        self.batches.ci_half_width_95()
    }

    /// The §7.2 stopping rule: at least `min_batches` completed and the
    /// 95% CI no wider than `ratio` of the mean.
    pub fn converged(&self, min_batches: usize, ratio: f64) -> bool {
        self.batches() >= min_batches
            && self.mean() > 0.0
            && self.ci_half_width_95() <= ratio * self.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_mean_and_variance() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_combines_parts_exactly() {
        let xs: Vec<f64> = (0..25).map(|i| (i * i % 13) as f64).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut merged = Accumulator::new();
        for part in [&xs[..7], &xs[7..7], &xs[7..20], &xs[20..]] {
            let mut a = Accumulator::new();
            for &x in part {
                a.push(x);
            }
            merged.merge(&a);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn t_values_monotone_toward_normal() {
        assert!(t_value_95(1) > t_value_95(5));
        assert!(t_value_95(5) > t_value_95(29));
        assert_eq!(t_value_95(100), 1.96);
        assert_eq!(t_value_95(0), f64::INFINITY);
    }

    #[test]
    fn batch_means_groups_correctly() {
        let mut b = BatchMeans::new(4);
        for i in 0..12 {
            b.push(i as f64);
        }
        assert_eq!(b.batches(), 3);
        assert_eq!(b.observations(), 12);
        // Batch means are 1.5, 5.5, 9.5 → grand mean 5.5.
        assert!((b.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_converges_fast() {
        let mut b = BatchMeans::new(5);
        for _ in 0..50 {
            b.push(42.0);
        }
        assert!(b.converged(5, 0.05));
        assert_eq!(b.mean(), 42.0);
        assert_eq!(b.ci_half_width_95(), 0.0);
    }

    #[test]
    fn high_variance_stream_needs_more_batches() {
        // Batch means of 1, 1000, 1, … vary wildly: the CI rule must not
        // declare convergence.
        let mut b = BatchMeans::new(2);
        for i in 0..12 {
            b.push(if (i / 2) % 2 == 0 { 1.0 } else { 1000.0 });
        }
        assert_eq!(b.batches(), 6);
        assert!(!b.converged(2, 0.05));
    }
}
