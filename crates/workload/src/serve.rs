//! The supervised job-execution service behind `mcast serve`
//! (DESIGN.md §13).
//!
//! A [`JobServer`] accepts [`crate::spec::ExperimentSpec`] jobs as
//! canonical JSON text and executes each under per-job supervision:
//!
//! * **panic isolation** — every attempt runs under `catch_unwind`, so
//!   a buggy (or chaos-injected) worker panic becomes a recorded
//!   transient failure, not a dead server;
//! * **deadline + step budgets** — each attempt gets a fresh
//!   [`RunBudget`]; a supervisor thread cancels budgets past their
//!   wall-clock deadline and the engine's own step ceiling bounds the
//!   simulated work, so a runaway simulation is cancellable;
//! * **bounded retries** — transient failures back off exponentially
//!   (capped, with deterministic jitter, mirroring
//!   `mcast_sim::RecoveryPolicy`) and a bounded retry budget turns
//!   persistent failures into recorded diagnostics instead of livelock;
//! * **admission control** — submissions past the queue cap are shed
//!   with a recorded [`JobOutcome::Shed`] outcome instead of queueing
//!   unboundedly;
//! * **crash safety** — every state transition is appended to a
//!   write-ahead [`Journal`] (fsync'd JSON lines carrying the canonical
//!   spec bytes), so killing and restarting the server re-runs every
//!   incomplete job and serves completed ones from a result cache
//!   keyed by canonical spec bytes.
//!
//! The ledger invariant the whole design answers to:
//! `accepted = completed + failed-with-diagnostic + shed` — zero jobs
//! lost. [`chaos_self_test`] proves it under injected worker panics,
//! deadline stalls, and a mid-batch hard kill (`mcast serve --chaos`).

use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mcast_obs::json::Json;
use mcast_obs::ServiceMetrics;
use mcast_sim::engine::RunBudget;

use crate::parallel::replication_seed;
use crate::spec::ExperimentSpec;

/// Serial number of an accepted submission (assigned in accept order,
/// durable across restarts via the journal).
pub type JobId = u64;

/// A service-layer failure (journal I/O, malformed directory).
#[derive(Debug, Clone)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServeError {}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> ServeError {
    ServeError(format!("{what} {}: {e}", path.display()))
}

/// Retry discipline for transient job failures — the job-layer mirror
/// of `mcast_sim::RecoveryPolicy`: capped exponential backoff with
/// deterministic jitter and a bounded retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per job before it fails with a diagnostic.
    pub max_retries: u32,
    /// Backoff before the first retry, in ms.
    pub backoff_base_ms: u64,
    /// Backoff ceiling (the exponential doubling is capped here).
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based), in ms: base · 2^(a−1),
    /// shift-clamped and saturating like the recovery engine's, capped,
    /// and never zero.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        self.backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ms)
            .max(1)
    }

    /// Deterministic per-job stagger added to the backoff so jobs
    /// retried off the same incident don't hammer the workers in
    /// lock-step — same shape as the recovery engine's jitter.
    pub fn jitter_ms(&self, job: JobId, attempt: u32) -> u64 {
        let roll = replication_seed(replication_seed(0x5e2e, job), attempt as u64);
        (roll % 7) * (self.backoff_base_ms / 4).max(1)
    }
}

/// Fault-injection knobs for the built-in chaos self-test. Decisions
/// are a pure function of (seed, job, attempt), so a chaos run is
/// reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Base seed for the per-attempt fault rolls.
    pub seed: u64,
    /// Per-mille probability an attempt panics inside the worker.
    pub panic_per_mille: u32,
    /// Per-mille probability an attempt stalls past its deadline.
    pub stall_per_mille: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xc4a05,
            panic_per_mille: 200,
            stall_per_mille: 150,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosAction {
    None,
    Panic,
    Stall,
}

impl ChaosConfig {
    fn roll(&self, job: JobId, attempt: u32) -> ChaosAction {
        let r = replication_seed(replication_seed(self.seed, job), attempt as u64) % 1000;
        if (r as u32) < self.panic_per_mille {
            ChaosAction::Panic
        } else if (r as u32) < self.panic_per_mille + self.stall_per_mille {
            ChaosAction::Stall
        } else {
            ChaosAction::None
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Admission-control queue cap: submissions finding this many jobs
    /// already queued are shed.
    pub queue_cap: usize,
    /// Per-attempt wall-clock deadline in ms (0 = no deadline).
    pub deadline_ms: u64,
    /// Per-attempt engine-step budget (0 = unlimited).
    pub step_budget: u64,
    /// Threads each job's sweep may use (kept at 1 by default so the
    /// worker pool, not the sweep, is the parallelism unit).
    pub sweep_jobs: usize,
    /// Override for every spec's single-run engine lanes (DESIGN.md
    /// §15); 0 honors whatever each spec declares. Safe to force: the
    /// parallel engine is bit-identical to serial, so cached results
    /// keyed by spec bytes stay valid.
    pub engine_jobs: usize,
    /// Retry discipline for transient failures.
    pub retry: RetryPolicy,
    /// Fault injection (`None` in production).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            deadline_ms: 0,
            step_budget: 0,
            sweep_jobs: 1,
            engine_jobs: 0,
            retry: RetryPolicy::default(),
            chaos: None,
        }
    }
}

/// Terminal state of an accepted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job produced a result (the canonical result text lives in
    /// the cache); `cached` marks completions served without running.
    Completed {
        /// Whether the result came straight from the cache.
        cached: bool,
    },
    /// The job failed permanently or exhausted its retry budget.
    Failed {
        /// Human-readable cause (parse error, panic message, deadline).
        diagnostic: String,
    },
    /// Admission control refused the job (`Overloaded`).
    Shed,
}

/// What `submit` did with a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitStatus {
    /// Queued for execution.
    Queued,
    /// Shed by admission control.
    Shed,
    /// Completed immediately from the result cache.
    Cached,
}

/// The journal-derived ledger. The service's central invariant is
/// [`Ledger::balanced`]: every accepted job reaches exactly one
/// terminal state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Submissions journaled (shed included).
    pub accepted: u64,
    /// Jobs with a result.
    pub completed: u64,
    /// Jobs failed with a diagnostic.
    pub failed: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
}

impl Ledger {
    /// `accepted == completed + failed + shed` — zero jobs lost or
    /// double-counted.
    pub fn balanced(&self) -> bool {
        self.accepted == self.completed + self.failed + self.shed
    }
}

impl std::fmt::Display for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accepted={} completed={} failed={} shed={} balanced={}",
            self.accepted,
            self.completed,
            self.failed,
            self.shed,
            self.balanced()
        )
    }
}

/// Serializes a [`Json`] value on one line (no indentation) — the
/// journal is a JSON-*lines* file, one record per line, so the
/// pretty-printing canonical serializer doesn't fit here. Strings are
/// escaped by the same writer `Json::to_json` uses, so embedded spec
/// and result text (which contains newlines) stays on the line.
fn compact_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => out.push_str(&mcast_obs::json::fmt_number(*x)),
        Json::Str(s) => {
            // Reuse the canonical escaper via a throwaway one-field value.
            let quoted = Json::Str(s.clone()).to_json();
            out.push_str(&quoted);
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact_json(&Json::Str(k.clone()), out);
                out.push(':');
                compact_json(val, out);
            }
            out.push('}');
        }
    }
}

/// The crash-safe write-ahead journal: an append-only JSON-lines file,
/// fsync'd per record. Replay tolerates a torn final line (a crash mid
/// `write`), and the [`Journal::crash_after_appends`] hook simulates a
/// hard process kill in-process by silently dropping all further
/// appends — the chaos self-test's mid-batch kill.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    frozen: AtomicBool,
    appends_left: AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) the journal file at `path`.
    pub fn open(path: &Path) -> Result<Journal, ServeError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("cannot open journal", path, e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            frozen: AtomicBool::new(false),
            appends_left: AtomicU64::new(u64::MAX),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as a single fsync'd JSON line. Returns
    /// whether the record was durably written (`false` once the
    /// journal is frozen by a simulated crash).
    fn append(&self, record: &Json) -> Result<bool, ServeError> {
        if self.frozen.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let left = self.appends_left.fetch_sub(1, Ordering::Relaxed);
        if left == 0 {
            // Counter underflowed past the crash point; freeze for good.
            self.frozen.store(true, Ordering::Relaxed);
            return Ok(false);
        }
        if left == 1 {
            self.frozen.store(true, Ordering::Relaxed);
        }
        let mut line = String::new();
        compact_json(record, &mut line);
        line.push('\n');
        let mut file = self.file.lock().expect("journal lock");
        file.write_all(line.as_bytes())
            .map_err(|e| io_err("cannot append to journal", &self.path, e))?;
        file.sync_data()
            .map_err(|e| io_err("cannot fsync journal", &self.path, e))?;
        Ok(true)
    }

    /// Test hook: after `n` more successful appends the journal behaves
    /// as if the process was killed — every later append is silently
    /// lost. Replay of the on-disk prefix must still balance.
    pub fn crash_after_appends(&self, n: u64) {
        self.appends_left.store(n, Ordering::Relaxed);
    }

    /// Test hook: freeze immediately (hard kill now).
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::Relaxed);
    }

    /// Whether a simulated crash froze the journal.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Relaxed)
    }
}

/// One replayed journal record, already field-checked.
enum Record {
    Accept {
        job: JobId,
        spec: String,
    },
    Shed {
        job: JobId,
    },
    /// `start` / `retry` — progress markers with no replay effect.
    Progress,
    Done {
        job: JobId,
        result: String,
    },
    Fail {
        job: JobId,
        diagnostic: String,
    },
}

fn parse_record(line: &str) -> Option<Record> {
    let v = Json::parse(line).ok()?;
    let job = v.get("job")?.as_num()? as JobId;
    match v.get("rec")?.as_str()? {
        "accept" => Some(Record::Accept {
            job,
            spec: v.get("spec")?.as_str()?.to_string(),
        }),
        "shed" => Some(Record::Shed { job }),
        "start" | "retry" => Some(Record::Progress),
        "done" => Some(Record::Done {
            job,
            result: v.get("result")?.as_str()?.to_string(),
        }),
        "fail" => Some(Record::Fail {
            job,
            diagnostic: v.get("diagnostic")?.as_str()?.to_string(),
        }),
        _ => None,
    }
}

/// A queued job.
#[derive(Debug, Clone)]
struct Job {
    id: JobId,
    /// Canonical spec bytes — the cache key and the journal payload.
    spec_text: String,
}

#[derive(Debug, Default)]
struct Inner {
    pending: VecDeque<Job>,
    /// Canonical spec bytes → canonical result bytes.
    cache: BTreeMap<String, String>,
    outcomes: BTreeMap<JobId, JobOutcome>,
    next_id: JobId,
    metrics: ServiceMetrics,
}

struct WatchEntry {
    token: u64,
    budget: RunBudget,
    deadline: Instant,
}

/// Why one attempt failed, and whether it is worth retrying.
struct AttemptError {
    transient: bool,
    diagnostic: String,
}

impl AttemptError {
    fn transient(diagnostic: String) -> Self {
        AttemptError {
            transient: true,
            diagnostic,
        }
    }
    fn permanent(diagnostic: String) -> Self {
        AttemptError {
            transient: false,
            diagnostic,
        }
    }
}

/// The supervised job server. See the module docs for the design;
/// construction is [`JobServer::open`], ingestion is
/// [`JobServer::submit_text`] / [`JobServer::ingest_inbox`], execution
/// is [`JobServer::run_until_drained`].
pub struct JobServer {
    dir: PathBuf,
    journal: Journal,
    cfg: ServeConfig,
    inner: Mutex<Inner>,
    watch_token: AtomicU64,
}

/// The inbox directory `mcast submit` drops canonical specs into.
pub fn inbox_dir(dir: &Path) -> PathBuf {
    dir.join("inbox")
}

/// FNV-1a of the spec bytes — the content-addressed inbox file name,
/// so re-submitting the same spec is idempotent at the file level.
pub fn spec_inbox_filename(spec_text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in spec_text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    format!("{h:016x}.json")
}

impl JobServer {
    /// Opens a server on `dir`, creating the directory and replaying
    /// any existing journal: completed/failed/shed jobs land in the
    /// ledger and result cache, incomplete ones are re-queued.
    pub fn open(dir: &Path, cfg: ServeConfig) -> Result<JobServer, ServeError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("cannot create journal dir", dir, e))?;
        let inbox = inbox_dir(dir);
        std::fs::create_dir_all(&inbox)
            .map_err(|e| io_err("cannot create inbox dir", &inbox, e))?;
        let journal_path = dir.join("journal.log");
        let mut inner = Inner::default();
        if let Ok(text) = std::fs::read_to_string(&journal_path) {
            Self::replay(&text, &mut inner);
        }
        let journal = Journal::open(&journal_path)?;
        Ok(JobServer {
            dir: dir.to_path_buf(),
            journal,
            cfg,
            inner: Mutex::new(inner),
            watch_token: AtomicU64::new(0),
        })
    }

    /// Rebuilds in-memory state from journal text. A line that doesn't
    /// parse is ignored — the only way one arises is a torn final
    /// write, and its record was by definition not acknowledged.
    fn replay(text: &str, inner: &mut Inner) {
        let mut specs: BTreeMap<JobId, String> = BTreeMap::new();
        for line in text.lines() {
            let Some(rec) = parse_record(line) else {
                continue;
            };
            match rec {
                Record::Accept { job, spec } => {
                    inner.metrics.accepted += 1;
                    inner.next_id = inner.next_id.max(job + 1);
                    specs.insert(job, spec);
                }
                Record::Shed { job } => {
                    if !inner.outcomes.contains_key(&job) {
                        inner.metrics.shed += 1;
                        inner.outcomes.insert(job, JobOutcome::Shed);
                        specs.remove(&job);
                    }
                }
                Record::Progress => {}
                Record::Done { job, result } => {
                    if !inner.outcomes.contains_key(&job) {
                        inner.metrics.completed += 1;
                        inner
                            .outcomes
                            .insert(job, JobOutcome::Completed { cached: false });
                        if let Some(spec) = specs.remove(&job) {
                            inner.cache.insert(spec, result);
                        }
                    }
                }
                Record::Fail { job, diagnostic } => {
                    if !inner.outcomes.contains_key(&job) {
                        inner.metrics.failed += 1;
                        inner
                            .outcomes
                            .insert(job, JobOutcome::Failed { diagnostic });
                    }
                }
            }
        }
        // Whatever has an accept but no terminal record is incomplete:
        // re-queue it for the next drain.
        for (job, spec_text) in specs {
            if !inner.outcomes.contains_key(&job) {
                inner.metrics.queued += 1;
                inner.pending.push_back(Job { id: job, spec_text });
            }
        }
    }

    /// Submits one spec (as text). The text is canonicalized when it
    /// parses (so logically-identical specs share a cache key); text
    /// that doesn't parse is still accepted and will terminate as
    /// failed-with-diagnostic. Returns the job id and what happened.
    pub fn submit_text(&self, spec_text: &str) -> Result<(JobId, SubmitStatus), ServeError> {
        let canonical = match ExperimentSpec::from_json(spec_text) {
            Ok(spec) => spec.to_json(),
            Err(_) => spec_text.to_string(),
        };
        let mut inner = self.inner.lock().expect("server lock");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.metrics.accepted += 1;
        self.journal.append(&Json::Obj(vec![
            ("rec".into(), Json::from("accept")),
            ("job".into(), Json::Num(id as f64)),
            ("spec".into(), Json::Str(canonical.clone())),
        ]))?;
        if let Some(result) = inner.cache.get(&canonical).cloned() {
            inner.metrics.completed += 1;
            inner.metrics.cache_hits += 1;
            inner
                .outcomes
                .insert(id, JobOutcome::Completed { cached: true });
            // Keep the cache keyed by this spec (it already is) and
            // journal the terminal state so a replay agrees.
            self.journal.append(&Json::Obj(vec![
                ("rec".into(), Json::from("done")),
                ("job".into(), Json::Num(id as f64)),
                ("result".into(), Json::Str(result)),
            ]))?;
            return Ok((id, SubmitStatus::Cached));
        }
        if inner.pending.len() >= self.cfg.queue_cap {
            inner.metrics.shed += 1;
            inner.outcomes.insert(id, JobOutcome::Shed);
            self.journal.append(&Json::Obj(vec![
                ("rec".into(), Json::from("shed")),
                ("job".into(), Json::Num(id as f64)),
            ]))?;
            return Ok((id, SubmitStatus::Shed));
        }
        inner.metrics.queued += 1;
        inner.pending.push_back(Job {
            id,
            spec_text: canonical,
        });
        Ok((id, SubmitStatus::Queued))
    }

    /// Ingests every `*.json` file from the inbox (sorted by name, so
    /// ingestion order is stable), submitting then deleting each.
    /// Returns how many were submitted.
    pub fn ingest_inbox(&self) -> Result<usize, ServeError> {
        let inbox = inbox_dir(&self.dir);
        let mut names: Vec<PathBuf> = std::fs::read_dir(&inbox)
            .map_err(|e| io_err("cannot read inbox", &inbox, e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        names.sort();
        let mut submitted = 0;
        for path in names {
            let text =
                std::fs::read_to_string(&path).map_err(|e| io_err("cannot read spec", &path, e))?;
            self.submit_text(&text)?;
            submitted += 1;
            // The accept record is durable; losing the file now is safe.
            std::fs::remove_file(&path).map_err(|e| io_err("cannot remove spec", &path, e))?;
        }
        Ok(submitted)
    }

    /// Runs queued jobs on the configured worker pool until the queue
    /// is empty, under full supervision (panic isolation, deadlines,
    /// budgets, retries). Returns when every queued job has reached a
    /// terminal state.
    pub fn run_until_drained(&self) {
        let stop = AtomicBool::new(false);
        let watch: Mutex<Vec<WatchEntry>> = Mutex::new(Vec::new());
        std::thread::scope(|outer| {
            if self.cfg.deadline_ms > 0 {
                outer.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let now = Instant::now();
                        for entry in watch.lock().expect("watch lock").iter() {
                            if now >= entry.deadline {
                                entry.budget.cancel();
                            }
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                });
            }
            std::thread::scope(|workers| {
                for _ in 0..self.cfg.workers.max(1) {
                    workers.spawn(|| self.worker_loop(&watch));
                }
            });
            stop.store(true, Ordering::Relaxed);
        });
    }

    fn worker_loop(&self, watch: &Mutex<Vec<WatchEntry>>) {
        loop {
            let job = {
                let mut inner = self.inner.lock().expect("server lock");
                match inner.pending.pop_front() {
                    Some(job) => {
                        inner.metrics.queued = inner.metrics.queued.saturating_sub(1);
                        inner.metrics.running += 1;
                        job
                    }
                    None => break,
                }
            };
            self.process_job(&job, watch);
            let mut inner = self.inner.lock().expect("server lock");
            inner.metrics.running = inner.metrics.running.saturating_sub(1);
        }
    }

    /// Runs one job to a terminal state: attempt → (retry with
    /// backoff)* → done/fail, journaling every transition.
    fn process_job(&self, job: &Job, watch: &Mutex<Vec<WatchEntry>>) {
        let t0 = Instant::now();
        let mut attempt: u32 = 0;
        let outcome = loop {
            let _ = self.journal.append(&Json::Obj(vec![
                ("rec".into(), Json::from("start")),
                ("job".into(), Json::Num(job.id as f64)),
                ("attempt".into(), Json::Num(attempt as f64)),
            ]));
            let budget = if self.cfg.step_budget > 0 {
                RunBudget::with_max_steps(self.cfg.step_budget)
            } else {
                RunBudget::unlimited()
            };
            let token = self.watch_token.fetch_add(1, Ordering::Relaxed);
            if self.cfg.deadline_ms > 0 {
                watch.lock().expect("watch lock").push(WatchEntry {
                    token,
                    budget: budget.clone(),
                    deadline: Instant::now() + Duration::from_millis(self.cfg.deadline_ms),
                });
            }
            let chaos = self
                .cfg
                .chaos
                .map(|c| c.roll(job.id, attempt))
                .unwrap_or(ChaosAction::None);
            let result = catch_unwind(AssertUnwindSafe(|| {
                self.run_attempt(&job.spec_text, &budget, chaos)
            }));
            if self.cfg.deadline_ms > 0 {
                watch
                    .lock()
                    .expect("watch lock")
                    .retain(|e| e.token != token);
            }
            let result = match result {
                Ok(r) => r,
                Err(payload) => Err(AttemptError::transient(format!(
                    "worker panic: {}",
                    panic_message(&payload)
                ))),
            };
            match result {
                Ok(text) => break Ok(text),
                Err(e) if !e.transient => break Err(e.diagnostic),
                Err(e) if attempt >= self.cfg.retry.max_retries => {
                    break Err(format!(
                        "retry budget exhausted after {} attempts; last error: {}",
                        attempt + 1,
                        e.diagnostic
                    ));
                }
                Err(e) => {
                    attempt += 1;
                    let delay = self.cfg.retry.backoff_ms(attempt)
                        + self.cfg.retry.jitter_ms(job.id, attempt);
                    let _ = self.journal.append(&Json::Obj(vec![
                        ("rec".into(), Json::from("retry")),
                        ("job".into(), Json::Num(job.id as f64)),
                        ("attempt".into(), Json::Num(attempt as f64)),
                        ("backoff_ms".into(), Json::Num(delay as f64)),
                        ("reason".into(), Json::Str(e.diagnostic)),
                    ]));
                    self.inner.lock().expect("server lock").metrics.retried += 1;
                    std::thread::sleep(Duration::from_millis(delay));
                }
            }
        };
        let latency_us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut inner = self.inner.lock().expect("server lock");
        match outcome {
            Ok(result_text) => {
                let _ = self.journal.append(&Json::Obj(vec![
                    ("rec".into(), Json::from("done")),
                    ("job".into(), Json::Num(job.id as f64)),
                    ("result".into(), Json::Str(result_text.clone())),
                ]));
                inner.metrics.completed += 1;
                inner
                    .outcomes
                    .insert(job.id, JobOutcome::Completed { cached: false });
                inner.cache.insert(job.spec_text.clone(), result_text);
            }
            Err(diagnostic) => {
                let _ = self.journal.append(&Json::Obj(vec![
                    ("rec".into(), Json::from("fail")),
                    ("job".into(), Json::Num(job.id as f64)),
                    ("diagnostic".into(), Json::Str(diagnostic.clone())),
                ]));
                inner.metrics.failed += 1;
                inner
                    .outcomes
                    .insert(job.id, JobOutcome::Failed { diagnostic });
            }
        }
        inner.metrics.observe_latency_us(latency_us);
    }

    /// One supervised attempt: parse, validate, run the sweep under the
    /// budget, render the canonical result. Parse/validate failures are
    /// permanent; budget/deadline stops are transient.
    fn run_attempt(
        &self,
        spec_text: &str,
        budget: &RunBudget,
        chaos: ChaosAction,
    ) -> Result<String, AttemptError> {
        match chaos {
            ChaosAction::Panic => panic!("chaos: injected worker panic"),
            ChaosAction::Stall => {
                // Stall past the deadline (bounded so chaos runs end);
                // the supervisor cancels our budget while we sleep.
                let deadline = self.cfg.deadline_ms.max(1);
                std::thread::sleep(Duration::from_millis((deadline * 2).min(deadline + 500)));
            }
            ChaosAction::None => {}
        }
        let mut spec = ExperimentSpec::from_json(spec_text)
            .map_err(|e| AttemptError::permanent(format!("spec rejected: {e}")))?;
        if self.cfg.engine_jobs > 0 {
            spec.engine_jobs = self.cfg.engine_jobs;
        }
        let rows = spec
            .run_sweep_with_budget(self.cfg.sweep_jobs.max(1), Some(budget.clone()))
            .map_err(|e| AttemptError::permanent(format!("spec rejected: {e}")))?;
        if budget.cancelled() {
            return Err(AttemptError::transient(format!(
                "deadline exceeded ({} ms)",
                self.cfg.deadline_ms
            )));
        }
        if budget.exhausted() || rows.iter().any(|r| r.result.budget_exhausted) {
            return Err(AttemptError::transient(format!(
                "engine step budget exhausted ({} steps)",
                self.cfg.step_budget
            )));
        }
        Ok(render_result(&spec, &rows))
    }

    /// The current ledger.
    pub fn ledger(&self) -> Ledger {
        let inner = self.inner.lock().expect("server lock");
        Ledger {
            accepted: inner.metrics.accepted,
            completed: inner.metrics.completed,
            failed: inner.metrics.failed,
            shed: inner.metrics.shed,
        }
    }

    /// Terminal outcomes by job id (replayed and fresh alike).
    pub fn outcomes(&self) -> BTreeMap<JobId, JobOutcome> {
        self.inner.lock().expect("server lock").outcomes.clone()
    }

    /// The cached canonical result for a spec (the text is
    /// canonicalized the same way `submit_text` does).
    pub fn cached_result(&self, spec_text: &str) -> Option<String> {
        let canonical = match ExperimentSpec::from_json(spec_text) {
            Ok(spec) => spec.to_json(),
            Err(_) => spec_text.to_string(),
        };
        self.inner
            .lock()
            .expect("server lock")
            .cache
            .get(&canonical)
            .cloned()
    }

    /// Number of jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.inner.lock().expect("server lock").pending.len()
    }

    /// A `service.*` metrics registry snapshot (see
    /// [`mcast_obs::ServiceMetrics::to_registry`]).
    pub fn metrics_registry(&self) -> mcast_obs::Registry {
        self.inner
            .lock()
            .expect("server lock")
            .metrics
            .to_registry()
    }

    /// The write-ahead journal (test hooks live here).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Renders a finished sweep as canonical JSON text. The engine is
/// deterministic, so the same canonical spec always renders to the same
/// bytes — which is what makes the byte-keyed result cache sound.
pub fn render_result(spec: &ExperimentSpec, rows: &[crate::parallel::SweepRow]) -> String {
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|row| {
            Json::Obj(vec![
                ("scheme".into(), Json::from(row.point.scheme.as_str())),
                (
                    "mean_interarrival_ns".into(),
                    Json::Num(row.point.mean_interarrival_ns),
                ),
                ("replication".into(), Json::from(row.point.replication)),
                // Seeds may exceed 2^53; render as text to stay exact.
                ("seed".into(), Json::Str(row.point.seed.to_string())),
                (
                    "mean_latency_us".into(),
                    Json::Num(row.result.mean_latency_us),
                ),
                ("ci_us".into(), Json::Num(row.result.ci_us)),
                ("batches".into(), Json::from(row.result.batches)),
                ("measured".into(), Json::from(row.result.measured)),
                ("saturated".into(), Json::Bool(row.result.saturated)),
                ("converged".into(), Json::Bool(row.result.converged)),
                (
                    "sim_time_ns".into(),
                    Json::Num(row.result.sim_time_ns as f64),
                ),
                ("completed".into(), Json::from(row.result.completed)),
                ("flit_hops".into(), Json::Num(row.result.flit_hops as f64)),
                (
                    "engine_steps".into(),
                    Json::Num(row.result.engine_steps as f64),
                ),
            ])
        })
        .collect();
    let mut out = Json::Obj(vec![
        ("schema".into(), Json::from("mcast-serve-result-v1")),
        ("spec_name".into(), Json::from(spec.name.as_str())),
        ("rows".into(), Json::Arr(rows_json)),
    ])
    .to_json();
    out.push('\n');
    out
}

/// The chaos self-test's report card.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Specs submitted in the first (chaotic) phase.
    pub submitted: usize,
    /// Ledger replayed from the truncated journal after the kill.
    pub replayed: Ledger,
    /// Jobs the replay re-queued (incomplete at the kill).
    pub requeued: usize,
    /// Final ledger after the post-restart drain.
    pub ledger: Ledger,
    /// Re-submitted specs verified byte-identical from the cache.
    pub cache_verified: usize,
    /// Retry attempts across both phases.
    pub retried: u64,
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chaos: submitted={} requeued-after-kill={} retried={} cache-verified={} ledger: {}",
            self.submitted, self.requeued, self.retried, self.cache_verified, self.ledger
        )
    }
}

fn tiny_spec(name: &str, seed: u64, load_us: f64) -> ExperimentSpec {
    let topo = mcast_sim::registry::TopoSpec::parse("mesh:4x4").expect("static topo");
    let mut spec = ExperimentSpec::new(name, topo);
    spec.loads_us = vec![load_us];
    spec.destinations = 3;
    spec.replications = 1;
    spec.seed = seed;
    spec.stopping.warmup = 10;
    spec.stopping.batch_size = 10;
    spec.stopping.min_batches = 2;
    spec.stopping.max_batches = 3;
    spec
}

/// The built-in chaos self-test (`mcast serve --chaos`): a batch of
/// small jobs (including a poisoned spec, a duplicate, and a runaway
/// job that exceeds its step budget) runs under injected worker panics
/// and deadline stalls; mid-drain the journal is hard-killed; a second
/// server replays the truncated journal, re-runs the incomplete jobs,
/// and the ledger invariant plus byte-identical cache serving are
/// asserted. Returns the report, or the first violated invariant.
pub fn chaos_self_test(dir: &Path, seed: u64) -> Result<ChaosReport, String> {
    if dir.exists() {
        std::fs::remove_dir_all(dir).map_err(|e| format!("cannot clear {}: {e}", dir.display()))?;
    }
    // The batch, in submission order: a poisoned spec (malformed
    // JSON), a runaway (blows its step budget every attempt), eight
    // healthy tiny specs, and a duplicate of the first healthy one.
    // With `queue_cap: 8` the tail three submissions are shed, so the
    // poisoned and runaway jobs — submitted first — always run.
    let mut specs: Vec<String> = vec!["{\"name\": \"poisoned\", \"topology\":".to_string()];
    let mut runaway = tiny_spec("runaway", seed ^ 0xdead, 40.0);
    runaway.stopping.max_batches = 100_000;
    runaway.stopping.min_batches = 100_000;
    runaway.stopping.batch_size = 100;
    runaway.stopping.max_in_flight_per_node = 1_000_000;
    specs.push(runaway.to_json());
    for i in 0..8 {
        specs.push(
            tiny_spec(
                &format!("chaos-{i}"),
                seed ^ (i as u64),
                500.0 + 50.0 * i as f64,
            )
            .to_json(),
        );
    }
    specs.push(specs[2].clone());

    let chaos_cfg = ServeConfig {
        workers: 3,
        queue_cap: 8,
        deadline_ms: 300,
        step_budget: 2_000_000,
        retry: RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 2,
            backoff_cap_ms: 20,
        },
        chaos: Some(ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }),
        ..ServeConfig::default()
    };

    let server = JobServer::open(dir, chaos_cfg.clone()).map_err(|e| e.to_string())?;
    for text in &specs {
        server.submit_text(text).map_err(|e| e.to_string())?;
    }
    // Hard-kill the journal a handful of records into the drain: the
    // process "dies" mid-batch and every later record is lost.
    server.journal().crash_after_appends(6);
    server.run_until_drained();
    if !server.journal().is_frozen() {
        return Err("chaos kill never fired (journal not frozen)".into());
    }
    drop(server);

    // Simulate the torn final write a real kill can leave behind.
    {
        let path = dir.join("journal.log");
        let mut f = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot reopen journal: {e}"))?;
        f.write_all(b"{\"rec\":\"done\",\"job\":")
            .map_err(|e| format!("cannot append torn line: {e}"))?;
    }

    // Restart: replay the truncated journal, re-run incomplete jobs
    // without chaos, and drain fully.
    let recover_cfg = ServeConfig {
        chaos: None,
        deadline_ms: 2_000,
        ..chaos_cfg
    };
    let server = JobServer::open(dir, recover_cfg).map_err(|e| e.to_string())?;
    let replayed = server.ledger();
    let requeued = server.queued();
    server.run_until_drained();

    let ledger = server.ledger();
    if !ledger.balanced() {
        return Err(format!("ledger does not balance after recovery: {ledger}"));
    }
    if ledger.accepted != specs.len() as u64 {
        return Err(format!(
            "jobs lost: accepted {} of {} submitted",
            ledger.accepted,
            specs.len()
        ));
    }
    let outcomes = server.outcomes();
    if outcomes.len() as u64 != ledger.accepted {
        return Err(format!(
            "outcome coverage hole: {} outcomes for {} accepted jobs",
            outcomes.len(),
            ledger.accepted
        ));
    }
    if ledger.shed != 3 {
        return Err(format!(
            "admission control drift: expected 3 shed with queue_cap 8, got {}",
            ledger.shed
        ));
    }

    // Cache checks: re-submitting a completed spec must be served from
    // the cache, byte-identical to the stored result.
    let mut cache_verified = 0;
    for text in specs.iter().skip(2).take(8) {
        let Some(stored) = server.cached_result(text) else {
            continue; // shed or failed under chaos — no result to serve
        };
        let (_, status) = server.submit_text(text).map_err(|e| e.to_string())?;
        if status != SubmitStatus::Cached {
            return Err(format!("completed spec not served from cache: {status:?}"));
        }
        let served = server
            .cached_result(text)
            .ok_or("cache entry vanished on re-submit")?;
        if served != stored {
            return Err("cache re-serve is not byte-identical".into());
        }
        cache_verified += 1;
    }
    if cache_verified == 0 {
        return Err("no job survived chaos to verify the cache with".into());
    }
    let final_ledger = server.ledger();
    if !final_ledger.balanced() {
        return Err(format!(
            "ledger does not balance after cache re-serves: {final_ledger}"
        ));
    }
    let metrics = server.metrics_registry();
    let retried = match metrics.get("service.jobs.retried") {
        Some(mcast_obs::MetricValue::Counter(c)) => c.get(),
        _ => 0,
    };
    Ok(ChaosReport {
        submitted: specs.len(),
        replayed,
        requeued,
        ledger: final_ledger,
        cache_verified,
        retried,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mcast-serve-test-{}-{name}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear test dir");
        }
        dir
    }

    #[test]
    fn compact_json_lines_parse_back() {
        let rec = Json::Obj(vec![
            ("rec".into(), Json::from("accept")),
            ("job".into(), Json::Num(3.0)),
            ("spec".into(), Json::Str("{\n  \"name\": \"x\"\n}\n".into())),
        ]);
        let mut line = String::new();
        compact_json(&rec, &mut line);
        assert!(!line.contains('\n'), "journal record must be one line");
        let back = Json::parse(&line).expect("compact record parses");
        assert_eq!(
            back.get("spec").unwrap().as_str().unwrap(),
            "{\n  \"name\": \"x\"\n}\n"
        );
    }

    #[test]
    fn backoff_mirrors_recovery_discipline() {
        let retry = RetryPolicy {
            max_retries: 8,
            backoff_base_ms: 100,
            backoff_cap_ms: 1000,
        };
        assert_eq!(retry.backoff_ms(1), 100);
        assert_eq!(retry.backoff_ms(2), 200);
        assert_eq!(retry.backoff_ms(3), 400);
        assert_eq!(retry.backoff_ms(5), 1000, "capped");
        assert_eq!(retry.backoff_ms(40), 1000, "shift clamp holds");
        // Jitter is deterministic and bounded.
        assert_eq!(retry.jitter_ms(7, 2), retry.jitter_ms(7, 2));
        assert!(retry.jitter_ms(7, 2) <= 6 * (100 / 4));
    }

    #[test]
    fn submit_run_complete_and_cache_round_trip() {
        let dir = test_dir("basic");
        let server = JobServer::open(&dir, ServeConfig::default()).unwrap();
        let spec = tiny_spec("basic", 11, 600.0).to_json();
        let (id, status) = server.submit_text(&spec).unwrap();
        assert_eq!(status, SubmitStatus::Queued);
        server.run_until_drained();
        let ledger = server.ledger();
        assert!(ledger.balanced(), "{ledger}");
        assert_eq!(ledger.completed, 1);
        assert_eq!(
            server.outcomes().get(&id),
            Some(&JobOutcome::Completed { cached: false })
        );
        let result = server.cached_result(&spec).expect("result cached");
        mcast_obs::validate_json(&result).expect("result is valid JSON");
        // Re-submit: served from cache, byte-identical.
        let (_, status) = server.submit_text(&spec).unwrap();
        assert_eq!(status, SubmitStatus::Cached);
        assert_eq!(server.cached_result(&spec).unwrap(), result);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_jobs_override_preserves_result_bytes() {
        // Forcing the space-parallel engine on every job must not
        // change a single result byte — that is what makes the
        // override safe under the spec-bytes-keyed result cache.
        let spec = tiny_spec("par", 31, 600.0).to_json();
        let serial_dir = test_dir("par-serial");
        let serial = JobServer::open(&serial_dir, ServeConfig::default()).unwrap();
        serial.submit_text(&spec).unwrap();
        serial.run_until_drained();
        let serial_result = serial.cached_result(&spec).expect("serial completed");

        let par_dir = test_dir("par-forced");
        let cfg = ServeConfig {
            engine_jobs: 4,
            ..ServeConfig::default()
        };
        let par = JobServer::open(&par_dir, cfg).unwrap();
        par.submit_text(&spec).unwrap();
        par.run_until_drained();
        let ledger = par.ledger();
        assert!(ledger.balanced(), "{ledger}");
        assert_eq!(ledger.completed, 1);
        assert_eq!(
            par.cached_result(&spec).expect("parallel completed"),
            serial_result,
            "engine_jobs=4 result bytes diverged from serial"
        );
        std::fs::remove_dir_all(&serial_dir).ok();
        std::fs::remove_dir_all(&par_dir).ok();
    }

    #[test]
    fn poisoned_spec_fails_with_diagnostic_not_retry() {
        let dir = test_dir("poison");
        let server = JobServer::open(&dir, ServeConfig::default()).unwrap();
        server.submit_text("{\"name\": \"broken\"").unwrap();
        server.run_until_drained();
        let ledger = server.ledger();
        assert!(ledger.balanced(), "{ledger}");
        assert_eq!(ledger.failed, 1);
        let outcomes = server.outcomes();
        let JobOutcome::Failed { diagnostic } = &outcomes[&0] else {
            panic!("expected failure, got {:?}", outcomes[&0]);
        };
        assert!(diagnostic.contains("spec rejected"), "{diagnostic}");
        // Permanent failures must not burn retries.
        let reg = server.metrics_registry();
        let Some(mcast_obs::MetricValue::Counter(retried)) = reg.get("service.jobs.retried") else {
            panic!("retried counter missing");
        };
        assert_eq!(retried.get(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admission_control_sheds_past_queue_cap() {
        let dir = test_dir("shed");
        let cfg = ServeConfig {
            queue_cap: 2,
            ..ServeConfig::default()
        };
        let server = JobServer::open(&dir, cfg).unwrap();
        let mut statuses = Vec::new();
        for i in 0..4 {
            let spec = tiny_spec(&format!("shed-{i}"), i, 700.0).to_json();
            statuses.push(server.submit_text(&spec).unwrap().1);
        }
        assert_eq!(
            statuses,
            vec![
                SubmitStatus::Queued,
                SubmitStatus::Queued,
                SubmitStatus::Shed,
                SubmitStatus::Shed
            ]
        );
        server.run_until_drained();
        let ledger = server.ledger();
        assert!(ledger.balanced(), "{ledger}");
        assert_eq!(ledger.shed, 2);
        assert_eq!(ledger.completed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_requeues_incomplete_and_serves_completed() {
        let dir = test_dir("replay");
        let spec_a = tiny_spec("replay-a", 21, 600.0).to_json();
        let spec_b = tiny_spec("replay-b", 22, 650.0).to_json();
        let result_a;
        {
            let server = JobServer::open(&dir, ServeConfig::default()).unwrap();
            server.submit_text(&spec_a).unwrap();
            server.run_until_drained();
            result_a = server.cached_result(&spec_a).expect("a completed");
            // Freeze, then submit b: its accept record is lost — the
            // "crash before the accept was acknowledged" case.
            // Instead simulate the acknowledged-but-incomplete case:
            // submit b first, then freeze before it runs.
        }
        {
            let server = JobServer::open(&dir, ServeConfig::default()).unwrap();
            server.submit_text(&spec_b).unwrap();
            server.journal().freeze();
            // The server "dies" before running b: drop without drain.
        }
        let server = JobServer::open(&dir, ServeConfig::default()).unwrap();
        assert_eq!(server.queued(), 1, "incomplete job re-queued");
        assert_eq!(
            server.cached_result(&spec_a),
            Some(result_a.clone()),
            "completed job served from replayed cache"
        );
        server.run_until_drained();
        let ledger = server.ledger();
        assert!(ledger.balanced(), "{ledger}");
        assert_eq!(ledger.accepted, 2);
        assert_eq!(ledger.completed, 2);
        assert!(server.cached_result(&spec_b).is_some());
        // Determinism across the restart: a fresh server in a fresh
        // dir produces byte-identical results for the same spec.
        let dir2 = test_dir("replay2");
        let fresh = JobServer::open(&dir2, ServeConfig::default()).unwrap();
        fresh.submit_text(&spec_a).unwrap();
        fresh.run_until_drained();
        assert_eq!(fresh.cached_result(&spec_a), Some(result_a));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn step_budget_exhaustion_is_transient_then_fails() {
        let dir = test_dir("budget");
        let cfg = ServeConfig {
            step_budget: 5_000,
            retry: RetryPolicy {
                max_retries: 1,
                backoff_base_ms: 1,
                backoff_cap_ms: 2,
            },
            ..ServeConfig::default()
        };
        let server = JobServer::open(&dir, cfg).unwrap();
        let mut spec = tiny_spec("heavy", 31, 100.0);
        spec.stopping.max_batches = 10_000;
        spec.stopping.min_batches = 10_000;
        spec.stopping.max_in_flight_per_node = 1_000_000;
        server.submit_text(&spec.to_json()).unwrap();
        server.run_until_drained();
        let ledger = server.ledger();
        assert!(ledger.balanced(), "{ledger}");
        assert_eq!(ledger.failed, 1);
        let outcomes = server.outcomes();
        let JobOutcome::Failed { diagnostic } = &outcomes[&0] else {
            panic!("expected failure");
        };
        assert!(
            diagnostic.contains("step budget"),
            "diagnostic names the budget: {diagnostic}"
        );
        assert!(
            diagnostic.contains("retry budget exhausted"),
            "transient path retried first: {diagnostic}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_self_test_invariants_hold() {
        let dir = test_dir("chaos");
        let report = chaos_self_test(&dir, 0xc4a05).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.ledger.balanced());
        assert_eq!(report.submitted, 11);
        assert!(report.cache_verified > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
