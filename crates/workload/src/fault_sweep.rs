//! Fault-sweep evaluation: latency and delivery ratio as a function of
//! the link fault rate, per routing scheme (DESIGN.md §8.4).
//!
//! For each fault rate a seeded random set of failed links is drawn
//! (optionally constrained to keep the survivors connected), the same
//! seeded message workload is submitted through the recovery engine,
//! and per-rate delivery/latency/recovery statistics are reported. The
//! rate-0 row runs on a healthy network and must reproduce the
//! fault-free numbers exactly — the fault-aware planners are
//! bit-identical to the Chapter 6 planners under an empty mask.

use mcast_core::model::MulticastSet;
use mcast_sim::recovery::{FaultMulticastRouter, RecoveryEngine, RecoveryPolicy};
use mcast_sim::{Network, SimConfig};
use mcast_topology::{FaultMask, Topology};

use crate::gen::MulticastGen;

/// Parameters of a fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepConfig {
    /// Physical simulation parameters.
    pub sim: SimConfig,
    /// Watchdog/retry policy.
    pub policy: RecoveryPolicy,
    /// Link fault rates to evaluate (should include 0.0 as the healthy
    /// baseline).
    pub fault_rates: Vec<f64>,
    /// Messages submitted per rate.
    pub messages: usize,
    /// Destinations drawn per message (with replacement).
    pub destinations: usize,
    /// Mean exponential interarrival between submissions (ns).
    pub mean_interarrival_ns: f64,
    /// Seed for both the fault masks and the workload. The workload
    /// stream is identical across rates so rows are comparable.
    pub seed: u64,
    /// Whether fault masks are constrained to keep the surviving
    /// network connected (delivery ratio 1.0 stays achievable).
    pub keep_connected: bool,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        FaultSweepConfig {
            sim: SimConfig::default(),
            policy: RecoveryPolicy::default(),
            fault_rates: vec![0.0, 0.02, 0.05, 0.10],
            messages: 64,
            destinations: 4,
            mean_interarrival_ns: 2_000.0,
            seed: 7,
            keep_connected: true,
        }
    }
}

/// One `(algorithm, fault rate)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Routing scheme name.
    pub algorithm: &'static str,
    /// Link fault rate requested.
    pub fault_rate: f64,
    /// Links actually failed by the drawn mask.
    pub failed_links: usize,
    /// Messages submitted.
    pub messages: usize,
    /// Total destinations over all messages.
    pub destinations_total: usize,
    /// Destinations delivered.
    pub destinations_delivered: usize,
    /// `destinations_delivered / destinations_total`.
    pub delivery_ratio: f64,
    /// Mean submit-to-last-delivery latency over fully resolved
    /// messages that delivered everything (µs); NaN if none did.
    pub mean_latency_us: f64,
    /// Watchdog aborts.
    pub aborts: usize,
    /// Re-injections.
    pub retries: usize,
    /// Messages dropped with undelivered destinations.
    pub drops: usize,
    /// Escape worms injected (outside the deadlock-free subnetworks).
    pub escapes: usize,
}

/// The seeded workload: sources, destination sets and submit times are
/// a pure function of the config, shared by every rate and algorithm.
fn workload(num_nodes: usize, cfg: &FaultSweepConfig) -> Vec<(u64, MulticastSet)> {
    let mut gen = MulticastGen::new(num_nodes, cfg.seed ^ 0x5eed_f00d);
    let mut t = 0u64;
    (0..cfg.messages)
        .map(|_| {
            t += gen.exponential_ns(cfg.mean_interarrival_ns);
            let source = gen.source();
            (t, gen.multicast(source, cfg.destinations))
        })
        .collect()
}

/// Runs the sweep for one routing scheme. Returns one row per fault
/// rate, in the order given by `cfg.fault_rates`.
pub fn run_fault_sweep<T: Topology + ?Sized>(
    topo: &T,
    router: &dyn FaultMulticastRouter,
    cfg: &FaultSweepConfig,
) -> Vec<FaultSweepRow> {
    let submissions = workload(topo.num_nodes(), cfg);
    cfg.fault_rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mask_seed = cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9);
            let mask = if rate == 0.0 {
                FaultMask::none()
            } else if cfg.keep_connected {
                FaultMask::random_links_connected(topo, rate, mask_seed)
            } else {
                FaultMask::random_links(topo, rate, mask_seed)
            };
            let network = Network::new(topo, router.required_classes());
            let mut rec = RecoveryEngine::new(network, cfg.sim, router, cfg.policy)
                .with_initial_faults(&mask);
            for (t, mc) in &submissions {
                rec.submit_at(*t, mc.clone());
            }
            rec.run();
            let (delivered, total) = rec.delivery_counts();
            let outcomes = rec.outcomes();
            let mut lat_sum = 0.0f64;
            let mut lat_n = 0usize;
            for o in &outcomes {
                if let Some(fin) = o.finished_at {
                    if o.undelivered.is_empty() {
                        lat_sum += (fin - o.submitted_at) as f64 / 1000.0;
                        lat_n += 1;
                    }
                }
            }
            let stats = rec.stats();
            FaultSweepRow {
                algorithm: router.name(),
                fault_rate: rate,
                failed_links: mask.num_failed_links(),
                messages: cfg.messages,
                destinations_total: total,
                destinations_delivered: delivered,
                delivery_ratio: if total == 0 {
                    1.0
                } else {
                    delivered as f64 / total as f64
                },
                mean_latency_us: if lat_n == 0 {
                    f64::NAN
                } else {
                    lat_sum / lat_n as f64
                },
                aborts: stats.aborts,
                retries: stats.retries,
                drops: stats.dropped,
                escapes: stats.escape_worms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_sim::recovery::{FaultDualPathRouter, ObliviousRouter};
    use mcast_sim::routers::DualPathRouter;
    use mcast_topology::Mesh2D;

    fn small_cfg() -> FaultSweepConfig {
        FaultSweepConfig {
            messages: 24,
            fault_rates: vec![0.0, 0.05, 0.15],
            ..FaultSweepConfig::default()
        }
    }

    #[test]
    fn fault_aware_dual_path_delivers_everything_while_connected() {
        let mesh = Mesh2D::new(6, 6);
        let router = FaultDualPathRouter::mesh(mesh);
        let rows = run_fault_sweep(&mesh, &router, &small_cfg());
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(
                row.delivery_ratio, 1.0,
                "connectivity-preserving masks keep every destination reachable \
                 (rate {})",
                row.fault_rate
            );
            assert!(row.mean_latency_us.is_finite());
            assert_eq!(row.drops, 0);
        }
        assert_eq!(rows[0].failed_links, 0);
        assert_eq!(rows[0].aborts, 0, "a healthy network needs no recovery");
        assert!(
            rows[2].failed_links > 0,
            "rate 0.15 on 6x6 should fail some links"
        );
    }

    /// The acceptance check for the rate-0 row: the fault-aware planner
    /// under an empty mask reproduces the healthy (fault-oblivious)
    /// numbers exactly — same workload, same latencies.
    #[test]
    fn rate_zero_reproduces_healthy_network_numbers() {
        let mesh = Mesh2D::new(6, 6);
        let cfg = FaultSweepConfig {
            fault_rates: vec![0.0],
            messages: 24,
            ..FaultSweepConfig::default()
        };
        let fault_aware = FaultDualPathRouter::mesh(mesh);
        let oblivious = ObliviousRouter::new(DualPathRouter::mesh(mesh));
        let a = &run_fault_sweep(&mesh, &fault_aware, &cfg)[0];
        let b = &run_fault_sweep(&mesh, &oblivious, &cfg)[0];
        assert_eq!(a.delivery_ratio, 1.0);
        assert_eq!(b.delivery_ratio, 1.0);
        assert_eq!(
            a.mean_latency_us, b.mean_latency_us,
            "bit-identical plans, equal timing"
        );
        assert_eq!(a.aborts + b.aborts, 0);
    }

    /// An oblivious tree baseline degrades under faults where the
    /// fault-aware planner does not.
    #[test]
    fn oblivious_baseline_drops_under_faults() {
        use mcast_sim::routers::XFirstTreeRouter;
        let mesh = Mesh2D::new(6, 6);
        let cfg = FaultSweepConfig {
            fault_rates: vec![0.0, 0.25],
            messages: 24,
            ..FaultSweepConfig::default()
        };
        let router = ObliviousRouter::new(XFirstTreeRouter::new(mesh));
        let rows = run_fault_sweep(&mesh, &router, &cfg);
        assert!(
            rows[1].delivery_ratio < rows[0].delivery_ratio,
            "blind tree routing must lose destinations at rate 0.25 \
             (got {} vs {})",
            rows[1].delivery_ratio,
            rows[0].delivery_ratio
        );
        assert!(rows[1].drops > 0);
    }

    #[test]
    fn workload_is_identical_across_calls() {
        let cfg = small_cfg();
        assert_eq!(workload(36, &cfg), workload(36, &cfg));
    }
}
