//! Workload generation and the Chapter 7 evaluation methodology: uniform
//! multicast sets, Poisson per-node traffic, static traffic measurement
//! (§7.1) and dynamic latency measurement with batch means (§7.2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conform;
pub mod dynamic;
pub mod fault_sweep;
pub mod gen;
pub mod parallel;
pub mod serve;
pub mod spec;
pub mod static_eval;
pub mod stats;

pub use conform::{
    check_scenario, registry_pairs, run_verify, scenario_for_case, shrink_scenario, RunTrace,
    VerifyFailure, VerifyReport, VerifyScenario, TOPOLOGY_POOL,
};
pub use dynamic::{
    measure_saturation_throughput, run_dynamic, run_dynamic_stream, run_dynamic_with_sink,
    DynamicConfig, DynamicResult, StreamConfig, ThroughputResult, TrafficPattern,
};
pub use fault_sweep::{run_fault_sweep, FaultSweepConfig, FaultSweepRow};
pub use gen::MulticastGen;
pub use parallel::{
    aggregate_sweep, default_jobs, parallel_map, replication_seed, resolve_jobs, run_dynamic_sweep,
    sweep_points, SweepAggregate, SweepConfig, SweepPoint, SweepRow,
};
pub use serve::{
    chaos_self_test, inbox_dir, render_result, spec_inbox_filename, ChaosConfig, ChaosReport,
    JobId, JobOutcome, JobServer, Journal, Ledger, RetryPolicy, ServeConfig, ServeError,
    SubmitStatus,
};
pub use spec::{ExperimentSpec, FaultSpec, PatternSpec, StoppingRule, StreamSpec};
pub use static_eval::{broadcast_additional, measure_traffic, TrafficPoint};
pub use stats::{Accumulator, BatchMeans};
