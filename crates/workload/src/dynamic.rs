//! Dynamic (contention) evaluation — the methodology of §7.2.
//!
//! Every node runs a *multicast generator*: messages arrive per node with
//! exponential interarrival times, each carrying `k` uniform distinct
//! destinations; the flit-level engine models the interaction of all the
//! worms; average network latency is estimated with batch means until the
//! 95% CI is within 5% of the mean (or a hard cap). An open-loop network
//! past saturation grows its backlog without bound, so the runner also
//! watches the in-flight population and reports saturation instead of
//! looping forever — the dissertation's plots stop at the same wall.

use mcast_core::model::MulticastSet;
use mcast_sim::engine::{Engine, SimConfig, Time};
use mcast_sim::network::Network;
use mcast_sim::routers::MulticastRouter;
use mcast_topology::Topology;

use crate::gen::MulticastGen;
use crate::stats::{Accumulator, BatchMeans};

/// Destination selection for the per-node Poisson generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniform random distinct destinations (§7.2's base load).
    Uniform,
    /// Uniform destinations, except every multicast from another node
    /// also addresses `node` — §7.2's non-uniform hot-spot load.
    Hotspot {
        /// The hot-spot node every message addresses.
        node: usize,
    },
    /// Bursty application phases (DESIGN.md §17): the run alternates
    /// between a *broadcast* phase (uniform multicasts, every node
    /// disseminating) and an *allreduce* phase (every multicast also
    /// addresses the reduction `root`, the hot-spot of the collective's
    /// gather step). Phases switch every `phase_len` injections, so the
    /// load the network sees swings between spread-out and converging
    /// traffic — the alternating compute/collective rhythm of data-
    /// parallel applications.
    Bursty {
        /// Injections per phase (phase index = `seq / phase_len`).
        phase_len: u64,
        /// The reduction root addressed during allreduce phases.
        root: usize,
    },
}

impl TrafficPattern {
    /// Rewrites the `seq`-th generated multicast set (0-based, in
    /// injection order) to match the pattern. `Uniform` leaves it
    /// untouched (and is therefore bit-identical to pattern-less runs);
    /// only [`TrafficPattern::Bursty`] reads `seq`.
    pub fn apply(&self, seq: u64, mc: MulticastSet) -> MulticastSet {
        fn toward(hot: usize, mc: MulticastSet) -> MulticastSet {
            if mc.source == hot || mc.destinations.contains(&hot) || mc.destinations.is_empty() {
                mc
            } else {
                let mut dests = mc.destinations;
                dests[0] = hot;
                MulticastSet::new(mc.source, dests)
            }
        }
        match *self {
            TrafficPattern::Uniform => mc,
            TrafficPattern::Hotspot { node: hot } => toward(hot, mc),
            TrafficPattern::Bursty { phase_len, root } => {
                if (seq / phase_len.max(1)) % 2 == 1 {
                    toward(root, mc)
                } else {
                    mc
                }
            }
        }
    }
}

/// Parameters of one dynamic experiment run.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Physical channel/flit parameters.
    pub sim: SimConfig,
    /// Mean interarrival time per node generator, in ns (the "load" axis:
    /// lower = heavier).
    pub mean_interarrival_ns: f64,
    /// Destinations per multicast message.
    pub destinations: usize,
    /// Messages discarded as warmup before statistics start.
    pub warmup: usize,
    /// Observations per batch.
    pub batch_size: usize,
    /// Minimum completed batches before the CI rule may stop the run.
    pub min_batches: usize,
    /// Hard cap on completed batches.
    pub max_batches: usize,
    /// CI-to-mean stopping ratio (the dissertation's 0.05).
    pub ci_ratio: f64,
    /// Saturation guard: in-flight messages per node beyond which the run
    /// is declared saturated.
    pub max_in_flight_per_node: usize,
    /// RNG seed.
    pub seed: u64,
    /// Destination selection pattern ([`TrafficPattern::Uniform`] is the
    /// historical behavior and the default).
    pub pattern: TrafficPattern,
    /// Optional cooperative execution budget (shared step ceiling +
    /// cancellation). `None` — the default — runs unbudgeted; with a
    /// budget installed the run stops at the next event boundary once
    /// it is spent or cancelled and the result carries
    /// [`DynamicResult::budget_exhausted`].
    pub budget: Option<mcast_sim::engine::RunBudget>,
    /// Worker lanes for single-run parallelism (DESIGN.md §15):
    /// `1` — the default — is the serial event loop; `N > 1` routes the
    /// engine through the deterministic window-cohort executor whose
    /// output is bit-identical to serial.
    pub engine_jobs: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            sim: SimConfig::default(),
            mean_interarrival_ns: 300_000.0,
            destinations: 10,
            warmup: 500,
            batch_size: 100,
            min_batches: 10,
            max_batches: 40,
            ci_ratio: 0.05,
            max_in_flight_per_node: 16,
            seed: 0x6d63_6173,
            pattern: TrafficPattern::Uniform,
            budget: None,
            engine_jobs: 1,
        }
    }
}

/// The outcome of one dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// Mean network latency (µs) over the measured batches.
    pub mean_latency_us: f64,
    /// 95% CI half-width (µs).
    pub ci_us: f64,
    /// Completed batches.
    pub batches: usize,
    /// Measured (post-warmup) message completions.
    pub measured: usize,
    /// Mean per-message traffic (channels) over measured messages.
    pub mean_traffic: f64,
    /// Whether the run hit the saturation guard before converging.
    pub saturated: bool,
    /// Whether the CI stopping rule was met.
    pub converged: bool,
    /// Final simulated time (ns).
    pub sim_time_ns: Time,
    /// Measured-latency distribution (log-bucketed, in ns): p50/p90/p99
    /// and exact min/max for the percentile columns of the §7.2 plots.
    pub latency_hist_ns: mcast_obs::Histogram,
    /// Per-message measured latencies (µs) as an exact Welford
    /// accumulator — the mergeable form the sweep aggregator folds
    /// across replications (see [`crate::stats::Accumulator::merge`]).
    pub latency_stats: Accumulator,
    /// Total message completions, warmup included (the engine-side
    /// count; `measured` is the post-warmup statistics subset).
    pub completed: usize,
    /// Flit-hop events processed by the engine over the whole run —
    /// the throughput-probe numerator, counted natively so probes no
    /// longer need a metrics sink on the hot path.
    pub flit_hops: u64,
    /// Discrete events the engine processed — an environment-insensitive
    /// work metric (identical across machines for a fixed seed).
    pub engine_steps: u64,
    /// Whether the run was stopped by an installed [`RunBudget`]
    /// (step ceiling reached or cancelled) before its stopping rule.
    ///
    /// [`RunBudget`]: mcast_sim::engine::RunBudget
    pub budget_exhausted: bool,
    /// High-water mark of live worm slots over the run — the memory
    /// gauge of DESIGN.md §16: under streaming injection this bounds
    /// the engine's worm arena, independent of how many messages the
    /// run injects.
    pub peak_live_worms: usize,
    /// High-water mark of in-flight messages over the run.
    pub peak_in_flight: usize,
}

impl DynamicResult {
    /// Median measured latency in µs (approximate, ≤ 12.5 % error).
    pub fn p50_latency_us(&self) -> f64 {
        self.latency_hist_ns.p50() as f64 / 1000.0
    }

    /// 99th-percentile measured latency in µs (approximate).
    pub fn p99_latency_us(&self) -> f64 {
        self.latency_hist_ns.p99() as f64 / 1000.0
    }
}

/// Runs one dynamic experiment: `router` on `topo`'s network under
/// Poisson multicast traffic.
pub fn run_dynamic<T: Topology + ?Sized>(
    topo: &T,
    router: &dyn MulticastRouter,
    cfg: &DynamicConfig,
) -> DynamicResult {
    run_dynamic_with_sink(topo, router, cfg, None)
}

/// [`run_dynamic`] with an optional observability sink installed on the
/// engine (flit-level events for tracing or metrics collection). The
/// statistics are identical with or without a sink.
pub fn run_dynamic_with_sink<T: Topology + ?Sized>(
    topo: &T,
    router: &dyn MulticastRouter,
    cfg: &DynamicConfig,
    sink: Option<Box<dyn mcast_obs::Sink>>,
) -> DynamicResult {
    let network = Network::new(topo, router.required_classes());
    let mut engine = Engine::new(network, cfg.sim);
    if let Some(s) = sink {
        engine.set_sink(s);
    }
    if let Some(b) = &cfg.budget {
        engine.set_budget(b.clone());
    }
    engine.set_engine_jobs(cfg.engine_jobs);
    let n = topo.num_nodes();
    let mut gen = MulticastGen::new(n, cfg.seed);

    // Per-node next generation times.
    let mut next_gen: Vec<(Time, usize)> = (0..n)
        .map(|node| (gen.exponential_ns(cfg.mean_interarrival_ns), node))
        .collect();

    let mut latencies = BatchMeans::new(cfg.batch_size);
    let mut latency_hist = mcast_obs::Histogram::new();
    let mut latency_stats = Accumulator::new();
    let mut traffic = Accumulator::new();
    let mut completions = 0usize;
    let mut saturated = false;
    let mut injected = 0u64;

    loop {
        // Inject at the earliest generator firing.
        let (&(t, node), _) = next_gen
            .iter()
            .zip(0..)
            .min_by_key(|((t, node), _)| (*t, *node))
            .expect("generators exist");
        engine.run_until(t);
        let mc = cfg.pattern.apply(
            injected,
            gen.multicast_distinct(node, cfg.destinations.min(n - 1)),
        );
        let plan = router.plan(&mc);
        engine.inject(&plan);
        injected += 1;
        next_gen[node].0 = t + gen.exponential_ns(cfg.mean_interarrival_ns);

        // Harvest completions.
        for done in engine.take_completed() {
            completions += 1;
            if completions <= cfg.warmup {
                continue;
            }
            let us = (done.completed_at - done.injected_at) as f64 / 1000.0;
            latencies.push(us);
            latency_stats.push(us);
            latency_hist.record(done.completed_at - done.injected_at);
            traffic.push(done.traffic as f64);
        }

        if latencies.batches() >= cfg.max_batches
            || latencies.converged(cfg.min_batches, cfg.ci_ratio)
        {
            break;
        }
        if engine.in_flight() > cfg.max_in_flight_per_node * n {
            saturated = true;
            break;
        }
        // A spent budget stops the engine from advancing; without this
        // break the injection loop above would spin forever.
        if engine.budget_exhausted() {
            break;
        }
    }

    DynamicResult {
        mean_latency_us: latencies.mean(),
        ci_us: latencies.ci_half_width_95(),
        batches: latencies.batches(),
        measured: latencies.observations(),
        mean_traffic: traffic.mean(),
        saturated,
        converged: latencies.converged(cfg.min_batches, cfg.ci_ratio),
        sim_time_ns: engine.now(),
        latency_hist_ns: latency_hist,
        latency_stats,
        completed: completions,
        flit_hops: engine.flit_hops(),
        engine_steps: engine.steps(),
        budget_exhausted: engine.budget_exhausted(),
        peak_live_worms: engine.peak_live_worms(),
        peak_in_flight: engine.peak_in_flight(),
    }
}

/// Bounds of one streaming (open-loop, bounded-memory) run — see
/// [`run_dynamic_stream`] and DESIGN.md §16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Stop after injecting this many multicasts (the "million-multicast
    /// run" axis). `None` defers to `duration_ns` or, if that is also
    /// unset, to the batch-means stopping rule of the [`DynamicConfig`].
    pub messages: Option<u64>,
    /// Stop once the generators' clock passes this simulated time (ns).
    pub duration_ns: Option<Time>,
    /// Backpressure ceiling: injection pauses (the source's clock keeps
    /// running, but the message waits) while this many messages are in
    /// flight, so live state is bounded by the cap rather than by the
    /// offered load.
    pub max_in_flight: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            messages: None,
            duration_ns: None,
            max_in_flight: 4096,
        }
    }
}

fn harvest(
    engine: &mut Engine,
    warmup: usize,
    completions: &mut usize,
    latencies: &mut BatchMeans,
    latency_stats: &mut Accumulator,
    latency_hist: &mut mcast_obs::Histogram,
    traffic: &mut Accumulator,
) {
    engine.drain_completed(|done| {
        *completions += 1;
        if *completions <= warmup {
            return;
        }
        let us = (done.completed_at - done.injected_at) as f64 / 1000.0;
        latencies.push(us);
        latency_stats.push(us);
        latency_hist.record(done.completed_at - done.injected_at);
        traffic.push(done.traffic as f64);
    });
}

/// Runs a dynamic experiment in **streaming** mode: same per-node
/// Poisson generators as [`run_dynamic`], but the engine recycles
/// message/worm slots and delivery buffers, statistics are folded
/// incrementally from [`Engine::drain_completed`], and plans are built
/// through a [`PlanArena`](mcast_sim::PlanArena) — so memory is
/// O(in-flight), not O(messages), and million-multicast runs fit in a
/// bounded footprint (DESIGN.md §16).
///
/// `stream.max_in_flight` applies backpressure: once that many messages
/// are live, injection waits for the network to drain before admitting
/// the next message (its generator timestamp is preserved; it simply
/// enters late). If the network cannot drain — no events pending while
/// at the cap — the run is wedged and reports `saturated`.
///
/// With `stream.messages`/`stream.duration_ns` unset, the stopping rule
/// is the batch-means CI rule of `cfg`, making this a drop-in
/// bounded-memory variant of [`run_dynamic`]. The measured statistics
/// are identical to the non-streaming runner for the same config
/// whenever both stop at the same point (the conformance fuzzer holds
/// this as an invariant).
pub fn run_dynamic_stream<T: Topology + ?Sized>(
    topo: &T,
    router: &dyn MulticastRouter,
    cfg: &DynamicConfig,
    stream: &StreamConfig,
) -> DynamicResult {
    let network = Network::new(topo, router.required_classes());
    let mut engine = Engine::new(network, cfg.sim);
    engine.set_stream_mode(true);
    if let Some(b) = &cfg.budget {
        engine.set_budget(b.clone());
    }
    engine.set_engine_jobs(cfg.engine_jobs);
    let n = topo.num_nodes();
    let mut gen = MulticastGen::new(n, cfg.seed);

    let mut next_gen: Vec<(Time, usize)> = (0..n)
        .map(|node| (gen.exponential_ns(cfg.mean_interarrival_ns), node))
        .collect();

    let mut latencies = BatchMeans::new(cfg.batch_size);
    let mut latency_hist = mcast_obs::Histogram::new();
    let mut latency_stats = Accumulator::new();
    let mut traffic = Accumulator::new();
    let mut completions = 0usize;
    let mut saturated = false;
    let mut injected = 0u64;
    let mut arena = mcast_sim::PlanArena::new();
    let mut plan = mcast_sim::DeliveryPlan {
        source: 0,
        destinations: Vec::new(),
        worms: Vec::new(),
    };

    'source: loop {
        let (&(t, node), _) = next_gen
            .iter()
            .zip(0..)
            .min_by_key(|((t, node), _)| (*t, *node))
            .expect("generators exist");
        if let Some(d) = stream.duration_ns {
            if t > d {
                break;
            }
        }
        // Backpressure: hold this injection until the live population
        // drops below the cap, advancing the engine event by event.
        while engine.in_flight() >= stream.max_in_flight {
            harvest(
                &mut engine,
                cfg.warmup,
                &mut completions,
                &mut latencies,
                &mut latency_stats,
                &mut latency_hist,
                &mut traffic,
            );
            if engine.in_flight() < stream.max_in_flight {
                break;
            }
            match engine.next_event_time() {
                Some(te) => {
                    engine.run_until(te);
                }
                None => {
                    // At the cap with nothing scheduled: the network is
                    // wedged (deadlocked worms hold the population up).
                    saturated = true;
                    break 'source;
                }
            }
            if engine.budget_exhausted() {
                break 'source;
            }
        }
        engine.run_until(t);
        let mc = cfg.pattern.apply(
            injected,
            gen.multicast_distinct(node, cfg.destinations.min(n - 1)),
        );
        router.plan_into(&mc, &mut arena, &mut plan);
        engine.inject(&plan);
        injected += 1;
        next_gen[node].0 = t + gen.exponential_ns(cfg.mean_interarrival_ns);

        harvest(
            &mut engine,
            cfg.warmup,
            &mut completions,
            &mut latencies,
            &mut latency_stats,
            &mut latency_hist,
            &mut traffic,
        );

        if let Some(m) = stream.messages {
            if injected >= m {
                break;
            }
        } else if stream.duration_ns.is_none() {
            if latencies.batches() >= cfg.max_batches
                || latencies.converged(cfg.min_batches, cfg.ci_ratio)
            {
                break;
            }
            if engine.in_flight() > cfg.max_in_flight_per_node * n {
                saturated = true;
                break;
            }
        }
        if engine.budget_exhausted() {
            break;
        }
    }

    // A count- or duration-bounded run drains its tail so every admitted
    // message resolves; the CI-rule path stops exactly where
    // `run_dynamic` stops (backlog left in flight) so the two report
    // identical statistics. Wedged or out-of-budget runs keep their
    // backlog either way.
    let drain_tail = stream.messages.is_some() || stream.duration_ns.is_some();
    if drain_tail && !saturated && !engine.budget_exhausted() {
        engine.run_to_quiescence();
        harvest(
            &mut engine,
            cfg.warmup,
            &mut completions,
            &mut latencies,
            &mut latency_stats,
            &mut latency_hist,
            &mut traffic,
        );
    }

    DynamicResult {
        mean_latency_us: latencies.mean(),
        ci_us: latencies.ci_half_width_95(),
        batches: latencies.batches(),
        measured: latencies.observations(),
        mean_traffic: traffic.mean(),
        saturated,
        converged: latencies.converged(cfg.min_batches, cfg.ci_ratio),
        sim_time_ns: engine.now(),
        latency_hist_ns: latency_hist,
        latency_stats,
        completed: completions,
        flit_hops: engine.flit_hops(),
        engine_steps: engine.steps(),
        budget_exhausted: engine.budget_exhausted(),
        peak_live_worms: engine.peak_live_worms(),
        peak_in_flight: engine.peak_in_flight(),
    }
}

/// Result of a closed-loop saturation-throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Sustained completions per millisecond of simulated time.
    pub messages_per_ms: f64,
    /// Mean message latency over the measured window (µs).
    pub mean_latency_us: f64,
    /// Messages measured.
    pub completed: usize,
}

/// Measures a routing scheme's **saturation throughput** (§2.1's
/// throughput criterion) with a closed-loop offered load: `window`
/// messages are kept in flight at all times (each completion immediately
/// triggers a fresh injection from a uniform source), and the sustained
/// completion rate is measured over `measure` completions after a
/// `window`-sized warmup.
pub fn measure_saturation_throughput<T: Topology + ?Sized>(
    topo: &T,
    router: &dyn MulticastRouter,
    destinations: usize,
    window: usize,
    measure: usize,
    sim: SimConfig,
    seed: u64,
) -> ThroughputResult {
    let network = Network::new(topo, router.required_classes());
    let mut engine = Engine::new(network, sim);
    let n = topo.num_nodes();
    let mut gen = crate::gen::MulticastGen::new(n, seed);
    let inject = |engine: &mut Engine, gen: &mut crate::gen::MulticastGen| {
        let s = gen.source();
        let mc = gen.multicast_distinct(s, destinations.min(n - 1));
        engine.inject(&router.plan(&mc));
    };
    for _ in 0..window {
        inject(&mut engine, &mut gen);
    }
    let mut warmed = 0usize;
    let mut measured = 0usize;
    let mut lat = Accumulator::new();
    let mut t_start = 0;
    loop {
        if !engine.step() {
            panic!(
                "closed-loop throughput run wedged with {} in flight (deadlock?)",
                engine.in_flight()
            );
        }
        for done in engine.take_completed() {
            if warmed < window {
                warmed += 1;
                if warmed == window {
                    t_start = engine.now();
                }
            } else {
                measured += 1;
                lat.push((done.completed_at - done.injected_at) as f64 / 1000.0);
            }
            inject(&mut engine, &mut gen);
        }
        if measured >= measure {
            break;
        }
    }
    let span_ms = (engine.now() - t_start) as f64 / 1e6;
    ThroughputResult {
        messages_per_ms: measured as f64 / span_ms,
        mean_latency_us: lat.mean(),
        completed: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_sim::routers::{DualPathRouter, MultiPathMeshRouter};
    use mcast_topology::Mesh2D;

    fn quick_cfg() -> DynamicConfig {
        DynamicConfig {
            warmup: 50,
            batch_size: 20,
            min_batches: 5,
            max_batches: 10,
            ..DynamicConfig::default()
        }
    }

    #[test]
    fn light_load_latency_close_to_contention_free() {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.mean_interarrival_ns = 3_000_000.0; // very light
        cfg.destinations = 5;
        let r = run_dynamic(&mesh, &router, &cfg);
        assert!(!r.saturated);
        assert!(r.mean_latency_us > 0.0);
        // 128-byte message at 20 MB/s is 6.4 µs of serialization; with
        // path detours the mean must sit within a small multiple.
        assert!(r.mean_latency_us < 60.0, "latency {} µs", r.mean_latency_us);
    }

    #[test]
    fn heavy_load_latency_exceeds_light_load() {
        let mesh = Mesh2D::new(8, 8);
        let router = MultiPathMeshRouter::new(mesh);
        let mut light = quick_cfg();
        light.mean_interarrival_ns = 2_000_000.0;
        let mut heavy = quick_cfg();
        heavy.mean_interarrival_ns = 400_000.0;
        let rl = run_dynamic(&mesh, &router, &light);
        let rh = run_dynamic(&mesh, &router, &heavy);
        assert!(
            rh.saturated || rh.mean_latency_us > rl.mean_latency_us,
            "heavy {} vs light {}",
            rh.mean_latency_us,
            rl.mean_latency_us
        );
    }

    #[test]
    fn latency_percentiles_populated_and_ordered() {
        let mesh = Mesh2D::new(4, 4);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.destinations = 3;
        cfg.mean_interarrival_ns = 500_000.0;
        let r = run_dynamic(&mesh, &router, &cfg);
        assert_eq!(r.latency_hist_ns.count() as usize, r.measured);
        assert!(r.p50_latency_us() > 0.0);
        assert!(r.p50_latency_us() <= r.p99_latency_us());
        assert!(r.p99_latency_us() <= r.latency_hist_ns.max() as f64 / 1000.0);
        // The histogram mean and the batch-means mean measure the same
        // stream (batch means only counts full batches, so allow slack).
        let hist_mean_us = r.latency_hist_ns.mean() / 1000.0;
        assert!((hist_mean_us - r.mean_latency_us).abs() < 0.5 * r.mean_latency_us);
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh2D::new(4, 4);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.destinations = 3;
        cfg.mean_interarrival_ns = 500_000.0;
        let a = run_dynamic(&mesh, &router, &cfg);
        let b = run_dynamic(&mesh, &router, &cfg);
        assert_eq!(a.mean_latency_us, b.mean_latency_us);
        assert_eq!(a.sim_time_ns, b.sim_time_ns);
    }

    #[test]
    fn engine_jobs_bit_identical_to_serial() {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.destinations = 6;
        cfg.mean_interarrival_ns = 120_000.0; // contended but below saturation
        let serial = run_dynamic(&mesh, &router, &cfg);
        cfg.engine_jobs = 4;
        let par = run_dynamic(&mesh, &router, &cfg);
        assert_eq!(serial.engine_steps, par.engine_steps);
        assert_eq!(serial.flit_hops, par.flit_hops);
        assert_eq!(serial.sim_time_ns, par.sim_time_ns);
        assert_eq!(serial.mean_latency_us, par.mean_latency_us);
        assert_eq!(serial.completed, par.completed);
        assert_eq!(
            format!("{:?}", serial.latency_hist_ns),
            format!("{:?}", par.latency_hist_ns)
        );
    }

    #[test]
    fn streaming_ci_rule_matches_run_dynamic_bitwise() {
        // With neither a message count nor a duration, the streaming
        // runner uses the same batch-means stopping rule — and with a
        // non-binding in-flight cap the whole run must be bit-identical
        // to the materializing runner.
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.destinations = 5;
        cfg.mean_interarrival_ns = 500_000.0;
        let a = run_dynamic(&mesh, &router, &cfg);
        let b = run_dynamic_stream(&mesh, &router, &cfg, &StreamConfig::default());
        assert_eq!(a.mean_latency_us, b.mean_latency_us);
        assert_eq!(a.sim_time_ns, b.sim_time_ns);
        assert_eq!(a.engine_steps, b.engine_steps);
        assert_eq!(a.flit_hops, b.flit_hops);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.measured, b.measured);
        assert_eq!(
            format!("{:?}", a.latency_hist_ns),
            format!("{:?}", b.latency_hist_ns)
        );
    }

    #[test]
    fn streaming_message_count_completes_all_with_bounded_in_flight() {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.destinations = 4;
        cfg.mean_interarrival_ns = 50_000.0; // heavy enough to hit the cap
        let stream = StreamConfig {
            messages: Some(5_000),
            max_in_flight: 48,
            ..StreamConfig::default()
        };
        let r = run_dynamic_stream(&mesh, &router, &cfg, &stream);
        assert!(!r.saturated);
        assert_eq!(r.completed, 5_000);
        assert!(
            r.peak_in_flight <= 48,
            "backpressure ceiling breached: {}",
            r.peak_in_flight
        );
        assert!(r.peak_live_worms > 0);
        assert_eq!(r.latency_hist_ns.count() as usize, r.completed - cfg.warmup);
    }

    #[test]
    fn streaming_engine_jobs_bit_identical_to_serial() {
        let mesh = Mesh2D::new(8, 8);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.destinations = 6;
        cfg.mean_interarrival_ns = 120_000.0;
        let stream = StreamConfig {
            messages: Some(1_500),
            max_in_flight: 96,
            ..StreamConfig::default()
        };
        let serial = run_dynamic_stream(&mesh, &router, &cfg, &stream);
        cfg.engine_jobs = 4;
        let par = run_dynamic_stream(&mesh, &router, &cfg, &stream);
        assert_eq!(serial.engine_steps, par.engine_steps);
        assert_eq!(serial.flit_hops, par.flit_hops);
        assert_eq!(serial.sim_time_ns, par.sim_time_ns);
        assert_eq!(serial.mean_latency_us, par.mean_latency_us);
        assert_eq!(serial.completed, par.completed);
        assert_eq!(serial.peak_in_flight, par.peak_in_flight);
        assert_eq!(serial.peak_live_worms, par.peak_live_worms);
    }

    #[test]
    fn streaming_duration_bound_stops_the_source() {
        let mesh = Mesh2D::new(4, 4);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.destinations = 3;
        cfg.mean_interarrival_ns = 200_000.0;
        let stream = StreamConfig {
            duration_ns: Some(5_000_000),
            ..StreamConfig::default()
        };
        let r = run_dynamic_stream(&mesh, &router, &cfg, &stream);
        assert!(!r.saturated);
        assert!(r.completed > 0);
        // The source stops at the bound; the tail drain may run later.
        assert!(r.sim_time_ns >= 5_000_000 || r.completed > 0);
    }

    #[test]
    fn saturation_guard_fires_under_overload() {
        let mesh = Mesh2D::new(4, 4);
        let router = DualPathRouter::mesh(mesh);
        let mut cfg = quick_cfg();
        cfg.mean_interarrival_ns = 1_000.0; // absurd overload
        cfg.destinations = 8;
        cfg.max_in_flight_per_node = 4;
        let r = run_dynamic(&mesh, &router, &cfg);
        assert!(r.saturated);
    }
}

#[cfg(test)]
mod throughput_tests {
    use super::*;
    use mcast_sim::routers::{DualPathRouter, FixedPathRouter};
    use mcast_topology::Mesh2D;

    #[test]
    fn closed_loop_throughput_is_positive_and_ranks_schemes() {
        let mesh = Mesh2D::new(6, 6);
        let dual = measure_saturation_throughput(
            &mesh,
            &DualPathRouter::mesh(mesh),
            6,
            24,
            150,
            SimConfig::default(),
            9,
        );
        let fixed = measure_saturation_throughput(
            &mesh,
            &FixedPathRouter::mesh(mesh),
            6,
            24,
            150,
            SimConfig::default(),
            9,
        );
        assert!(dual.messages_per_ms > 0.0);
        assert!(fixed.messages_per_ms > 0.0);
        // Fixed-path wastes channels on small destination sets, so its
        // saturation throughput is lower.
        assert!(
            dual.messages_per_ms > fixed.messages_per_ms,
            "dual {:.2}/ms !> fixed {:.2}/ms",
            dual.messages_per_ms,
            fixed.messages_per_ms
        );
    }
}
