//! Multicast workload generation (§7.1/§7.2).
//!
//! Static experiments draw `k` destination addresses uniformly from the
//! node space exactly as the dissertation does ("a random number
//! generator generates k integers within the range [0,1023]") — duplicate
//! draws and draws equal to the source collapse, mirroring the paper's
//! setup. Dynamic experiments additionally draw exponential interarrival
//! times per node.

use mcast_core::model::MulticastSet;
use mcast_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of uniform multicast sets over `num_nodes`.
#[derive(Debug, Clone)]
pub struct MulticastGen {
    rng: StdRng,
    num_nodes: usize,
}

impl MulticastGen {
    /// Creates a generator with an explicit seed (all experiments are
    /// reproducible from their seeds).
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        MulticastGen {
            rng: StdRng::seed_from_u64(seed),
            num_nodes,
        }
    }

    /// Draws a uniform source node.
    pub fn source(&mut self) -> NodeId {
        self.rng.gen_range(0..self.num_nodes)
    }

    /// Draws `k` destination addresses uniformly (with replacement, as in
    /// §7.1) for the given source; the returned set collapses duplicates.
    pub fn multicast(&mut self, source: NodeId, k: usize) -> MulticastSet {
        let dests: Vec<NodeId> = (0..k)
            .map(|_| self.rng.gen_range(0..self.num_nodes))
            .collect();
        MulticastSet::new(source, dests)
    }

    /// Draws `k` *distinct* destinations different from the source —
    /// used by the dynamic experiments, where `k` is the exact
    /// destination count per message.
    pub fn multicast_distinct(&mut self, source: NodeId, k: usize) -> MulticastSet {
        assert!(k < self.num_nodes, "cannot pick {k} distinct destinations");
        let mut dests = Vec::with_capacity(k);
        while dests.len() < k {
            let d = self.rng.gen_range(0..self.num_nodes);
            if d != source && !dests.contains(&d) {
                dests.push(d);
            }
        }
        MulticastSet::new(source, dests)
    }

    /// Draws an exponential interarrival time with the given mean (ns),
    /// by inversion. Never returns 0.
    pub fn exponential_ns(&mut self, mean_ns: f64) -> u64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-mean_ns * u.ln()).ceil().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = MulticastGen::new(64, 7);
        let mut b = MulticastGen::new(64, 7);
        for _ in 0..10 {
            let s = a.source();
            assert_eq!(s, b.source());
            assert_eq!(a.multicast(s, 5), b.multicast(s, 5));
        }
    }

    #[test]
    fn distinct_destinations_are_distinct() {
        let mut g = MulticastGen::new(64, 3);
        for _ in 0..50 {
            let mc = g.multicast_distinct(10, 12);
            assert_eq!(mc.k(), 12);
            assert!(!mc.destinations.contains(&10));
        }
    }

    #[test]
    fn with_replacement_can_collapse() {
        // k = 200 draws over 64 nodes must collapse well below 200.
        let mut g = MulticastGen::new(64, 11);
        let mc = g.multicast(0, 200);
        assert!(mc.k() < 64);
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut g = MulticastGen::new(4, 5);
        let n = 20_000;
        let mean = 1000.0;
        let total: u64 = (0..n).map(|_| g.exponential_ns(mean)).sum();
        let observed = total as f64 / n as f64;
        assert!((observed - mean).abs() < mean * 0.05, "observed {observed}");
    }
}
