//! Static (traffic-only) evaluation — the methodology of §7.1.
//!
//! For each destination count `k`, a batch of random multicast sets is
//! drawn and the *average additional traffic* (total channels minus `k`,
//! the per-destination lower bound of [20]) is reported for each routing
//! scheme. These drive Figs 7.1–7.7.

use mcast_core::model::MulticastSet;

use crate::gen::MulticastGen;
use crate::stats::Accumulator;

/// One scheme's traffic statistics at a given `k`.
#[derive(Debug, Clone)]
pub struct TrafficPoint {
    /// Requested destination count (before duplicate collapse).
    pub k: usize,
    /// Mean effective destination count after collapse.
    pub mean_effective_k: f64,
    /// Mean total traffic (channels).
    pub mean_traffic: f64,
    /// Mean additional traffic (`traffic − effective_k`).
    pub mean_additional: f64,
    /// 95% CI half-width of the additional traffic.
    pub ci_additional: f64,
    /// Trials run.
    pub trials: usize,
}

/// Measures a routing scheme's traffic over `trials` random multicast
/// sets with `k` destination draws each (uniform sources, destinations
/// with replacement — §7.1's setup).
pub fn measure_traffic<F>(
    num_nodes: usize,
    k: usize,
    trials: usize,
    seed: u64,
    mut route_traffic: F,
) -> TrafficPoint
where
    F: FnMut(&MulticastSet) -> usize,
{
    let mut gen = MulticastGen::new(num_nodes, seed);
    let mut add = Accumulator::new();
    let mut tot = Accumulator::new();
    let mut eff = Accumulator::new();
    for _ in 0..trials {
        let source = gen.source();
        let mc = gen.multicast(source, k);
        let traffic = route_traffic(&mc);
        assert!(
            traffic >= mc.k(),
            "any multicast needs at least one channel per destination (got {traffic} for k={})",
            mc.k()
        );
        eff.push(mc.k() as f64);
        tot.push(traffic as f64);
        add.push((traffic - mc.k()) as f64);
    }
    TrafficPoint {
        k,
        mean_effective_k: eff.mean(),
        mean_traffic: tot.mean(),
        mean_additional: add.mean(),
        ci_additional: add.ci_half_width_95(),
        trials,
    }
}

/// The broadcast comparison line of §7.1: traffic is always `N − 1`, so
/// additional traffic is `N − 1 − effective_k`.
pub fn broadcast_additional(num_nodes: usize, mean_effective_k: f64) -> f64 {
    (num_nodes - 1) as f64 - mean_effective_k
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::model::multi_unicast_traffic;
    use mcast_topology::hamiltonian::mesh2d_cycle;
    use mcast_topology::{Mesh2D, Topology};

    #[test]
    fn sorted_mp_beats_multi_unicast_on_average() {
        let m = Mesh2D::new(8, 8);
        let c = mesh2d_cycle(&m);
        let mp = measure_traffic(m.num_nodes(), 12, 200, 42, |mc| {
            mcast_core::sorted_mp::sorted_mp(&m, &c, mc).len()
        });
        let mu = measure_traffic(m.num_nodes(), 12, 200, 42, |mc| {
            multi_unicast_traffic(&m, mc)
        });
        assert!(
            mp.mean_additional < mu.mean_additional,
            "MP {} !< multi-unicast {}",
            mp.mean_additional,
            mu.mean_additional
        );
    }

    #[test]
    fn same_seed_same_results() {
        let m = Mesh2D::new(8, 8);
        let c = mesh2d_cycle(&m);
        let run = || {
            measure_traffic(m.num_nodes(), 6, 50, 1, |mc| {
                mcast_core::sorted_mp::sorted_mp(&m, &c, mc).len()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.mean_additional, b.mean_additional);
        assert_eq!(a.mean_traffic, b.mean_traffic);
    }

    #[test]
    fn broadcast_line_is_constant_total() {
        let add = broadcast_additional(1024, 10.0);
        assert_eq!(add, 1013.0);
    }
}
