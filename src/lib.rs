//! # mcast — Multicast Communication in Multicomputer Networks
//!
//! A from-scratch Rust reproduction of X. Lin's dissertation *Multicast
//! Communication in Multicomputer Networks* (Michigan State University;
//! the extended form of Lin & Ni, ICPP 1990) — the work that introduced
//! the first deadlock-free multicast wormhole routing algorithms.
//!
//! The facade re-exports the five member crates:
//!
//! * [`topology`] — 2D/3D meshes, hypercubes, k-ary n-cubes, grid
//!   graphs, Hamiltonian labelings, channel dependency graphs;
//! * [`routing`] — the multicast models (MP/MC/ST/MT/MS), the Chapter 5
//!   heuristics, the Chapter 6 deadlock-free wormhole schemes, exact
//!   solvers and the NP-completeness reduction constructions;
//! * [`sim`] — a flit-level discrete-event wormhole simulator (the
//!   CSIM substitute used for the Chapter 7 dynamic study);
//! * [`workload`] — generators, static traffic evaluation, and
//!   batch-means statistics;
//! * [`obs`] — the observability layer: typed simulation events,
//!   sinks, a metrics registry, and Chrome-trace/CSV exporters
//!   (`mcast trace` / `mcast metrics`; see DESIGN.md §9).
//!
//! ## Quickstart
//!
//! ```
//! use mcast::prelude::*;
//!
//! // A 6×6 mesh with the dissertation's boustrophedon labeling.
//! let mesh = Mesh2D::new(6, 6);
//! let labeling = mesh2d_snake(&mesh);
//!
//! // One multicast: source (3,2), five destinations.
//! let mc = MulticastSet::new(
//!     mesh.node(3, 2),
//!     [mesh.node(0, 0), mesh.node(5, 5), mesh.node(0, 5), mesh.node(5, 0), mesh.node(2, 4)],
//! );
//!
//! // Deadlock-free dual-path routing (§6.2.2).
//! let paths = dual_path(&mesh, &labeling, &mc);
//! let traffic: usize = paths.iter().map(|p| p.len()).sum();
//! assert!(traffic >= mc.k());
//!
//! // And the same message through the flit-level wormhole simulator.
//! let router = DualPathRouter::mesh(mesh);
//! let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
//! engine.inject(&router.plan(&mc));
//! assert!(engine.run_to_quiescence());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mcast_core as routing;
pub use mcast_obs as obs;
pub use mcast_sim as sim;
pub use mcast_topology as topology;
pub use mcast_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use mcast_core::dc_xfirst_tree::dc_xfirst;
    pub use mcast_core::divided_greedy::divided_greedy_tree;
    pub use mcast_core::dual_path::dual_path;
    pub use mcast_core::fixed_path::fixed_path;
    pub use mcast_core::greedy_st::greedy_st;
    pub use mcast_core::model::{MulticastRoute, MulticastSet, PathRoute, TreeRoute};
    pub use mcast_core::multi_path::{multi_path, multi_path_mesh};
    pub use mcast_core::sorted_mp::{sorted_mc, sorted_mp};
    pub use mcast_core::xfirst::xfirst_tree;
    pub use mcast_core::RoutingGeometry;
    pub use mcast_obs::{Metrics, Recording, SimEvent, Sink};
    pub use mcast_sim::registry::{
        build_route, build_router, schemes_for, BuiltTopo, SchemeId, TopoSpec,
    };
    pub use mcast_sim::routers::{
        DoubleChannelTreeRouter, DualPathRouter, EcubeTreeRouter, FixedPathRouter,
        MultiPathCubeRouter, MultiPathMeshRouter, MulticastRouter, XFirstTreeRouter,
    };
    pub use mcast_sim::{ClassChoice, DeliveryPlan, Engine, Network, SimConfig};
    pub use mcast_topology::hamiltonian::{hypercube_cycle, mesh2d_cycle, HamiltonCycle};
    pub use mcast_topology::labeling::{
        hypercube_gray, karyn_gray, mesh2d_snake, mesh3d_snake, Labeling,
    };
    pub use mcast_topology::{
        Channel, Dir2, GridGraph, Hypercube, KAryNCube, Mesh2D, Mesh3D, NodeId, Topology,
    };
    pub use mcast_workload::{
        run_dynamic, BatchMeans, DynamicConfig, ExperimentSpec, MulticastGen, PatternSpec,
        TrafficPoint,
    };
}
