//! Integration tests for the differential conformance harness (ISSUE 5,
//! DESIGN.md §12): the registry's deadlock-freedom claims checked
//! *operationally* on the reference simulator, and the harness's own
//! acceptance gates — a clean sweep across the registry, and proof that
//! an intentionally injected engine bug is caught and shrunk small.

use mcast::sim::registry::{build_router, schemes_for, SchemeId, TopoSpec, SCHEMES};
use mcast::sim::{Network, ReferenceEngine, SimConfig};
use mcast::workload::conform::{check_scenario, run_verify, shrink_scenario, VerifyScenario};
use mcast::workload::{MulticastGen, PatternSpec, TrafficPattern};

/// Saturates the reference simulator with an adversarial closed
/// scenario: every node sources several hot-spot multicasts, all
/// injected at t = 0, so the hot node's incoming channels are fought
/// over by the whole machine at once. Returns whether the network
/// drained and how many messages ran.
fn hotspot_full_load_quiesces(topo: &TopoSpec, scheme: &SchemeId) -> (bool, usize) {
    let router = build_router(topo, scheme).expect("registered pair builds");
    let built = topo.build();
    let n = topo.num_nodes();
    let pattern = TrafficPattern::Hotspot {
        node: topo.hotspot_node(),
    };
    // Tree schemes claim deadlock freedom under the virtual cut-through
    // router model the dissertation references — message-sized branch
    // buffers. Under strict single-flit lock-step replication they can
    // wedge through shared-buffer sibling coupling (the finding pinned
    // in tests/tree_lockstep_finding.rs), so test the claim in the
    // model it is made for. Path and circuit schemes keep the strict
    // single-flit wormhole model.
    let mut config = SimConfig::default();
    if scheme.name.ends_with("-tree") {
        config.buffer_flits = config.flits_per_message();
    }
    let mut engine = ReferenceEngine::new(
        Network::new(built.as_dyn(), router.required_classes()),
        config,
    );
    let mut gen = MulticastGen::new(n, 0xA11);
    let mut injected = 0;
    for _round in 0..3 {
        for src in 0..n {
            let mc = pattern.apply(injected, gen.multicast_distinct(src, 4.min(n - 1)));
            engine.inject(&router.plan(&mc));
            injected += 1;
        }
    }
    (engine.run_to_quiescence(), injected as usize)
}

/// Registry-claims satellite: every scheme the registry declares
/// deadlock-free must *operationally* survive full-load hot-spot
/// traffic on a 4x4 mesh and a 3-cube (wherever it is registered) —
/// not just have an acyclic CDG on paper.
#[test]
fn deadlock_free_claims_hold_under_adversarial_hotspot_load() {
    let topos = [
        TopoSpec::parse("mesh:4x4").unwrap(),
        TopoSpec::parse("cube:3").unwrap(),
    ];
    let mut checked = 0;
    for info in SCHEMES.iter().filter(|i| i.deadlock_free && i.simulable) {
        for topo in &topos {
            let Some(scheme) = schemes_for(topo).into_iter().find(|s| s.name == info.name) else {
                continue; // not registered on this topology kind
            };
            let (quiesced, injected) = hotspot_full_load_quiesces(topo, &scheme);
            assert!(
                quiesced,
                "{} on {topo} claims deadlock freedom but wedged under \
                 {injected} full-load hot-spot multicasts",
                info.name
            );
            checked += 1;
        }
    }
    // Every deadlock-free simulable scheme is registered on at least
    // one of the two topologies; most on exactly one, the path schemes
    // on both.
    assert!(checked >= 8, "only {checked} (scheme, topology) runs");
}

/// Acceptance gate 1: `mcast verify --seed 1 --cases 64` — 64 seeded
/// cases covering every registry (topology, scheme) pair — passes with
/// zero mismatches.
#[test]
fn verify_sweep_seed1_64_cases_is_clean() {
    let report = run_verify(1, 64, false).expect("cases derive");
    assert!(
        report.failures.is_empty(),
        "conformance failures: {:#?}",
        report.failures
    );
}

/// Acceptance gate 2: the intentionally injected engine bug (the
/// test-only swapped channel-class check) is caught by the harness and
/// shrinks to a reproducer spec of at most 4 messages.
#[test]
fn injected_class_swap_bug_is_caught_and_shrunk() {
    let scenario = VerifyScenario {
        topology: TopoSpec::parse("mesh:4x4").unwrap(),
        scheme: SchemeId::named("dc-tree"),
        pattern: PatternSpec::Hotspot,
        load_us: 10.0,
        destinations: 5,
        messages: 16,
        seed: 11,
        fault_rate: 0.0,
        engine_jobs: 1,
        stream: true,
    };
    assert!(
        check_scenario(&scenario, false).unwrap().is_empty(),
        "scenario must be clean without the bug"
    );
    let problems = check_scenario(&scenario, true).unwrap();
    assert!(!problems.is_empty(), "the injected bug must be detected");
    let shrunk = shrink_scenario(&scenario, true);
    assert!(
        shrunk.messages <= 4,
        "reproducer has {} messages, acceptance bound is 4",
        shrunk.messages
    );
    let spec = shrunk.to_spec();
    spec.validate().expect("reproducer spec validates");
    let replayed = VerifyScenario::from_spec(&spec).expect("reproducer decodes");
    assert!(
        !check_scenario(&replayed, true).unwrap().is_empty(),
        "replayed reproducer must still expose the bug"
    );
}
