//! §8.1's closing claim, exercised end to end: "These routing algorithms
//! can be applied to any multicomputer networks that have Hamilton
//! paths." Dual-path / multi-path / fixed-path run unmodified on
//! cube-connected cycles, k-ary n-cubes and 3D meshes — routed, validated
//! and simulated.

use mcast::prelude::*;
use mcast::routing::vc_multi_path;
use mcast::sim::plan::{PlanPath, PlanWorm};
use mcast::topology::hamiltonian::find_path;
use mcast::topology::CubeConnectedCycles;

fn star_plan(mc: &MulticastSet, paths: &[mcast::routing::PathRoute]) -> DeliveryPlan {
    DeliveryPlan {
        source: mc.source,
        destinations: mc.destinations.clone(),
        worms: paths
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| {
                PlanWorm::Path(PlanPath {
                    nodes: p.nodes().to_vec(),
                    class: ClassChoice::Any,
                })
            })
            .collect(),
    }
}

fn route_and_simulate<T: Topology>(topo: &T, labeling: &Labeling, seed: usize) {
    let n = topo.num_nodes();
    let mc = MulticastSet::new((seed * 7) % n, (0..6).map(|i| (seed * 13 + i * 5 + 1) % n));
    // Route with all three schemes and validate.
    let dual = dual_path(topo, labeling, &mc);
    MulticastRoute::Star(dual.clone())
        .validate(topo, &mc)
        .unwrap();
    let multi = multi_path(topo, labeling, &mc);
    MulticastRoute::Star(multi).validate(topo, &mc).unwrap();
    let fixed = fixed_path(topo, labeling, &mc);
    MulticastRoute::Star(fixed).validate(topo, &mc).unwrap();
    // Simulate the dual-path delivery.
    let mut engine = Engine::new(Network::new(topo, 1), SimConfig::default());
    engine.inject(&star_plan(&mc, &dual));
    assert!(
        engine.run_to_quiescence(),
        "seed {seed}: wedged on {}",
        topo.describe()
    );
}

#[test]
fn path_routing_on_cube_connected_cycles() {
    let ccc = CubeConnectedCycles::new(3);
    let labeling = Labeling::from_path(find_path(&ccc, 0).expect("CCC(3) has a Hamiltonian path"));
    assert!(labeling.is_hamiltonian_path_of(&ccc));
    for seed in 0..15 {
        route_and_simulate(&ccc, &labeling, seed);
    }
}

#[test]
fn path_routing_on_kary_ncube() {
    let t = KAryNCube::mesh(4, 3); // 64 nodes
    let labeling = karyn_gray(&t);
    for seed in 0..15 {
        route_and_simulate(&t, &labeling, seed);
    }
}

#[test]
fn path_routing_on_3d_mesh() {
    let m = Mesh3D::new(4, 4, 4);
    let labeling = mesh3d_snake(&m);
    for seed in 0..15 {
        route_and_simulate(&m, &labeling, seed);
    }
}

#[test]
fn saturating_closed_load_on_ccc_drains() {
    // Every CCC(3) node multicasts simultaneously via dual-path.
    let ccc = CubeConnectedCycles::new(3);
    let labeling = Labeling::from_path(find_path(&ccc, 0).expect("Hamiltonian"));
    let mut engine = Engine::new(Network::new(&ccc, 1), SimConfig::default());
    for s in 0..ccc.num_nodes() {
        let mc = MulticastSet::new(s, (1..=5).map(|i| (s + i * 4) % ccc.num_nodes()));
        engine.inject(&star_plan(&mc, &dual_path(&ccc, &labeling, &mc)));
    }
    assert!(engine.run_to_quiescence(), "CCC saturating load wedged");
}

#[test]
fn vc_lanes_on_kary_ncube() {
    let t = KAryNCube::mesh(3, 3);
    let labeling = karyn_gray(&t);
    let mc = MulticastSet::new(13, (0..10).map(|i| (i * 2 + 1) % 27));
    for lanes in 1..=3u8 {
        let paths = vc_multi_path::vc_multi_path(&t, &labeling, &mc, lanes);
        for &d in &mc.destinations {
            assert!(
                paths.iter().any(|p| p.path.hops_to(d).is_some()),
                "lanes={lanes}"
            );
        }
    }
}
