//! §8.1's closing claim, exercised end to end: "These routing algorithms
//! can be applied to any multicomputer networks that have Hamilton
//! paths." Dual-path / multi-path / fixed-path run unmodified on
//! cube-connected cycles, k-ary n-cubes and 3D meshes — routed, validated
//! and simulated.

use mcast::prelude::*;
use mcast::routing::vc_multi_path;
use mcast::sim::plan::{PlanPath, PlanWorm};
use mcast::sim::registry::{build_router, scheme_deadlock_free, schemes_for, TopoSpec};
use mcast::topology::cdg::ChannelDependencyGraph;
use mcast::topology::hamiltonian::find_path;
use mcast::topology::CubeConnectedCycles;
use mcast::workload::MulticastGen;

/// One sample of every registered topology kind.
const REGISTRY_TOPOS: [&str; 5] = ["mesh:4x4", "mesh:3x3x2", "cube:4", "kary:3x2", "torus:3x2"];

fn star_plan(mc: &MulticastSet, paths: &[mcast::routing::PathRoute]) -> DeliveryPlan {
    DeliveryPlan {
        source: mc.source,
        destinations: mc.destinations.clone(),
        worms: paths
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| {
                PlanWorm::Path(PlanPath {
                    nodes: p.nodes().to_vec(),
                    class: ClassChoice::Any,
                })
            })
            .collect(),
    }
}

fn route_and_simulate<T: Topology>(topo: &T, labeling: &Labeling, seed: usize) {
    let n = topo.num_nodes();
    let mc = MulticastSet::new((seed * 7) % n, (0..6).map(|i| (seed * 13 + i * 5 + 1) % n));
    // Route with all three schemes and validate.
    let dual = dual_path(topo, labeling, &mc);
    MulticastRoute::Star(dual.clone())
        .validate(topo, &mc)
        .unwrap();
    let multi = multi_path(topo, labeling, &mc);
    MulticastRoute::Star(multi).validate(topo, &mc).unwrap();
    let fixed = fixed_path(topo, labeling, &mc);
    MulticastRoute::Star(fixed).validate(topo, &mc).unwrap();
    // Simulate the dual-path delivery.
    let mut engine = Engine::new(Network::new(topo, 1), SimConfig::default());
    engine.inject(&star_plan(&mc, &dual));
    assert!(
        engine.run_to_quiescence(),
        "seed {seed}: wedged on {}",
        topo.describe()
    );
}

#[test]
fn path_routing_on_cube_connected_cycles() {
    let ccc = CubeConnectedCycles::new(3);
    let labeling = Labeling::from_path(find_path(&ccc, 0).expect("CCC(3) has a Hamiltonian path"));
    assert!(labeling.is_hamiltonian_path_of(&ccc));
    for seed in 0..15 {
        route_and_simulate(&ccc, &labeling, seed);
    }
}

#[test]
fn path_routing_on_kary_ncube() {
    let t = KAryNCube::mesh(4, 3); // 64 nodes
    let labeling = karyn_gray(&t);
    for seed in 0..15 {
        route_and_simulate(&t, &labeling, seed);
    }
}

#[test]
fn path_routing_on_3d_mesh() {
    let m = Mesh3D::new(4, 4, 4);
    let labeling = mesh3d_snake(&m);
    for seed in 0..15 {
        route_and_simulate(&m, &labeling, seed);
    }
}

#[test]
fn saturating_closed_load_on_ccc_drains() {
    // Every CCC(3) node multicasts simultaneously via dual-path.
    let ccc = CubeConnectedCycles::new(3);
    let labeling = Labeling::from_path(find_path(&ccc, 0).expect("Hamiltonian"));
    let mut engine = Engine::new(Network::new(&ccc, 1), SimConfig::default());
    for s in 0..ccc.num_nodes() {
        let mc = MulticastSet::new(s, (1..=5).map(|i| (s + i * 4) % ccc.num_nodes()));
        engine.inject(&star_plan(&mc, &dual_path(&ccc, &labeling, &mc)));
    }
    assert!(engine.run_to_quiescence(), "CCC saturating load wedged");
}

/// Resolves the classes a worm may occupy: `Fixed(c)` pins one class,
/// `Any` may land on any of the network's classes.
fn worm_classes(class: ClassChoice, num_classes: u8) -> Vec<u8> {
    match class {
        ClassChoice::Fixed(c) => vec![c],
        ClassChoice::Any => (0..num_classes).collect(),
    }
}

/// Registry exhaustiveness (§8.1 generalised): every `(topology, scheme)`
/// pair the registry advertises builds a router, routes a smoke
/// multicast, and drains to quiescence on the flit-level engine.
#[test]
fn every_registered_pair_routes_and_quiesces() {
    for topo_s in REGISTRY_TOPOS {
        let topo = TopoSpec::parse(topo_s).unwrap();
        let built = topo.build();
        let n = topo.num_nodes();
        for scheme in schemes_for(&topo) {
            let router = build_router(&topo, &scheme)
                .unwrap_or_else(|e| panic!("{topo_s}/{scheme}: {}", e.0));
            let mut gen = MulticastGen::new(n, 0xc0de);
            for trial in 0..8 {
                let src = gen.source();
                let mc = gen.multicast_distinct(src, 5.min(n / 2));
                let plan = router.plan(&mc);
                assert_eq!(
                    plan.destinations, mc.destinations,
                    "{topo_s}/{scheme} trial {trial}: plan covers the set"
                );
                let mut engine = Engine::new(
                    Network::new(built.as_dyn(), router.required_classes()),
                    SimConfig::default(),
                );
                engine.inject(&plan);
                assert!(
                    engine.run_to_quiescence(),
                    "{topo_s}/{scheme} trial {trial}: wedged"
                );
            }
        }
    }
}

/// For every registered pair whose scheme the dissertation proves
/// deadlock-free, accumulate the channel dependencies of many random
/// multicasts and assert each channel class's CDG is acyclic (Dally &
/// Seitz). Deadlock-prone baselines (`xfirst-tree`, `ecube-tree`) are
/// exactly the ones skipped.
#[test]
fn deadlock_free_schemes_have_acyclic_cdgs() {
    for topo_s in REGISTRY_TOPOS {
        let topo = TopoSpec::parse(topo_s).unwrap();
        let built = topo.build();
        let n = topo.num_nodes();
        for scheme in schemes_for(&topo) {
            // The claim is per (topology, scheme): the modern competitors
            // inherit the base unicast routing's freedom, which the torus
            // wrap rings break (DESIGN.md §17.4).
            if !scheme_deadlock_free(&topo, &scheme.name) {
                continue;
            }
            let router = build_router(&topo, &scheme).unwrap();
            let classes = router.required_classes();
            // One CDG per channel class; a worm only ever waits on
            // channels of the class it occupies.
            let mut cdgs: Vec<ChannelDependencyGraph> = (0..classes)
                .map(|_| ChannelDependencyGraph::new(built.as_dyn().channels()))
                .collect();
            let mut gen = MulticastGen::new(n, 0xd15c);
            for _ in 0..25 {
                let src = gen.source();
                let mc = gen.multicast_distinct(src, (n / 2).clamp(2, 8));
                for worm in router.plan(&mc).worms {
                    match worm {
                        // A staged worm holds no channel while held, so
                        // waiting adds no dependence edge; once released
                        // it is an ordinary path worm (DESIGN.md §17.3).
                        PlanWorm::Staged(s) => {
                            for c in worm_classes(s.path.class, classes) {
                                for w in s.path.nodes.windows(3) {
                                    cdgs[c as usize].add_dependency(
                                        Channel::new(w[0], w[1]),
                                        Channel::new(w[1], w[2]),
                                    );
                                }
                            }
                        }
                        PlanWorm::Path(p) | PlanWorm::Circuit(p) => {
                            for c in worm_classes(p.class, classes) {
                                for w in p.nodes.windows(3) {
                                    cdgs[c as usize].add_dependency(
                                        Channel::new(w[0], w[1]),
                                        Channel::new(w[1], w[2]),
                                    );
                                }
                            }
                        }
                        PlanWorm::Tree(t) => {
                            // A lock-step tree holds every branch at
                            // once: each edge depends on the child edges
                            // it feeds (same class only — dc-tree keeps
                            // each of its two trees within one class).
                            for &(from, to, c1) in &t.edges {
                                for &(from2, to2, c2) in &t.edges {
                                    if from2 == to && c1 == c2 {
                                        for c in worm_classes(c1, classes) {
                                            cdgs[c as usize].add_dependency(
                                                Channel::new(from, to),
                                                Channel::new(from2, to2),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            for (c, cdg) in cdgs.iter().enumerate() {
                assert!(
                    cdg.is_acyclic(),
                    "{topo_s}/{scheme}: class-{c} CDG has a cycle: {:?}",
                    cdg.find_cycle()
                );
            }
        }
    }
}

#[test]
fn vc_lanes_on_kary_ncube() {
    let t = KAryNCube::mesh(3, 3);
    let labeling = karyn_gray(&t);
    let mc = MulticastSet::new(13, (0..10).map(|i| (i * 2 + 1) % 27));
    for lanes in 1..=3u8 {
        let paths = vc_multi_path::vc_multi_path(&t, &labeling, &mc, lanes);
        for &d in &mc.destinations {
            assert!(
                paths.iter().any(|p| p.path.hops_to(d).is_some()),
                "lanes={lanes}"
            );
        }
    }
}
