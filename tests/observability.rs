//! The observability contract: attaching any sink (event recording,
//! metrics collection, or both) never perturbs simulation results.
//! Healthy runs, deadlocking runs, and fault-injected recovering runs
//! must all be bit-identical with and without instrumentation, and the
//! collected metrics must agree with the uninstrumented outcome.

use mcast::prelude::*;
use mcast_obs::{Metrics, Recording, Tee};
use mcast_sim::deadlock::{
    fig_6_4_multicasts, run_closed_scenario, run_closed_scenario_recovering,
    run_closed_scenario_recovering_with_sink, run_closed_scenario_with_sink,
};
use mcast_sim::recovery::{ObliviousRouter, RecoveryEngine, RecoveryPolicy};
use mcast_topology::{FaultEvent, FaultSchedule};
use proptest::prelude::*;

/// A tee of a fresh `Recording` and `Metrics` pair, handles returned
/// for readback.
fn tee() -> (Recording, Metrics, Box<dyn mcast_obs::Sink>) {
    let rec = Recording::new();
    let met = Metrics::new();
    let sink = Tee::new()
        .with(Box::new(rec.clone()))
        .with(Box::new(met.clone()));
    (rec, met, Box::new(sink))
}

/// Seeded batch of simultaneous multicasts on an `n`-node topology.
fn seeded_multicasts(n: usize, count: usize, k: usize, seed: u64) -> Vec<MulticastSet> {
    let mut gen = MulticastGen::new(n, seed);
    (0..count)
        .map(|_| {
            let s = gen.source();
            gen.multicast_distinct(s, k.min(n - 1))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recording_sink_is_invisible_on_healthy_meshes(
        (side, count, k, seed) in (3usize..=6, 1usize..=12, 1usize..=6, 0u64..1000)
    ) {
        let mesh = Mesh2D::new(side, side);
        let router = DualPathRouter::mesh(mesh);
        let mcs = seeded_multicasts(mesh.num_nodes(), count, k, seed);

        let bare = run_closed_scenario(
            &router,
            Network::new(&mesh, 1),
            SimConfig::default(),
            &mcs,
        );
        let (rec, met, sink) = tee();
        let observed = run_closed_scenario_with_sink(
            &router,
            Network::new(&mesh, 1),
            SimConfig::default(),
            &mcs,
            Some(sink),
        );
        prop_assert_eq!(&bare, &observed);
        prop_assert!(bare.completed, "dual-path closed scenarios drain");

        // The sink did observe the run, and its aggregates agree with
        // the uninstrumented outcome.
        prop_assert!(!rec.is_empty());
        let snap = met.snapshot();
        prop_assert_eq!(snap.injected as usize, mcs.len());
        prop_assert_eq!(snap.completed as usize, mcs.len());
        prop_assert_eq!(snap.latency_ns.count(), snap.completed);
        prop_assert_eq!(snap.end_ns, bare.finished_at);
    }
}

#[test]
fn recording_sink_is_invisible_on_a_deadlocked_scenario() {
    // Fig 6.4's X-first trees wedge; the stuck diagnostics must be
    // identical with a sink attached.
    let mesh = Mesh2D::new(4, 3);
    let router = XFirstTreeRouter::new(mesh);
    let mcs = fig_6_4_multicasts(&mesh);
    let bare = run_closed_scenario(&router, Network::new(&mesh, 1), SimConfig::default(), &mcs);
    let (rec, _met, sink) = tee();
    let observed = run_closed_scenario_with_sink(
        &router,
        Network::new(&mesh, 1),
        SimConfig::default(),
        &mcs,
        Some(sink),
    );
    assert!(!bare.completed);
    assert_eq!(bare, observed);
    // A wedged run still produced channel events (the blocked worms).
    assert!(rec
        .events()
        .iter()
        .any(|e| matches!(e, mcast_obs::SimEvent::ChannelBlocked { .. })));
}

#[test]
fn recording_sink_is_invisible_under_recovery() {
    // Deadlock recovery (abort–drain–retry) with and without a sink:
    // outcome, stats, and the structured event log all match.
    let mesh = Mesh2D::new(4, 3);
    let router = ObliviousRouter::new(XFirstTreeRouter::new(mesh));
    let mcs = fig_6_4_multicasts(&mesh);
    let bare = run_closed_scenario_recovering(
        &router,
        Network::new(&mesh, 1),
        SimConfig::default(),
        RecoveryPolicy::default(),
        &mcs,
    );
    let (rec, met, sink) = tee();
    let observed = run_closed_scenario_recovering_with_sink(
        &router,
        Network::new(&mesh, 1),
        SimConfig::default(),
        RecoveryPolicy::default(),
        &mcs,
        Some(sink),
    );
    assert_eq!(bare, observed);
    assert!(bare.0.completed, "recovery resolves the Fig 6.4 deadlock");
    let snap = met.snapshot();
    assert_eq!(snap.recovery_aborts as usize, bare.1.aborts);
    assert_eq!(snap.recovery_retries as usize, bare.1.retries);
    assert!(rec
        .events()
        .iter()
        .any(|e| matches!(e, mcast_obs::SimEvent::RecoveryAborted { .. })));
}

#[test]
fn recording_sink_is_invisible_with_injected_faults() {
    // Mid-run link failures under the recovery engine: the faulted run
    // is bit-identical with and without instrumentation.
    let mesh = Mesh2D::new(5, 5);
    let router = mcast_sim::recovery::FaultDualPathRouter::mesh(mesh);
    let mcs = seeded_multicasts(mesh.num_nodes(), 12, 4, 0xfau64);
    let mut schedule = FaultSchedule::none();
    schedule.push(
        20_000,
        FaultEvent::LinkDown(mesh.node(2, 2), mesh.node(3, 2)),
    );
    schedule.push(
        45_000,
        FaultEvent::LinkDown(mesh.node(1, 1), mesh.node(1, 2)),
    );

    let run = |sink: Option<Box<dyn mcast_obs::Sink>>| {
        let mut rec = RecoveryEngine::new(
            Network::new(&mesh, 1),
            SimConfig::default(),
            &router,
            RecoveryPolicy::default(),
        );
        rec.set_schedule(schedule.clone());
        if let Some(s) = sink {
            rec.set_sink(s);
        }
        for mc in &mcs {
            rec.submit(mc.clone());
        }
        let completed = rec.run();
        (
            completed,
            rec.now(),
            rec.stats().clone(),
            rec.events().to_vec(),
            rec.outcomes(),
        )
    };

    let bare = run(None);
    let (rec, met, sink) = tee();
    let observed = run(Some(sink));
    assert_eq!(bare, observed);
    assert_eq!(bare.2.link_failures, 2);
    let snap = met.snapshot();
    assert_eq!(snap.link_failures, 2);
    assert!(rec
        .events()
        .iter()
        .any(|e| matches!(e, mcast_obs::SimEvent::LinkFailed { .. })));
}
