//! Integration tests for the space-parallel deterministic engine
//! (DESIGN.md §15): `--engine-jobs N` must be **bit-identical** to the
//! serial engine on every registry topology — including irregular
//! `custom:` graphs — must tolerate lane counts that do not divide the
//! node count, must order cross-partition (time, seq) ties exactly as
//! the serial event queue does, and must compose with the recovery
//! supervisor and the saturation guard.

use mcast_sim::deadlock::fig_6_4_multicasts;
use mcast_sim::registry::{build_router, SchemeId, TopoSpec};
use mcast_sim::{Engine, Network, ObliviousRouter, RecoveryEngine, RecoveryPolicy, SimConfig};
use mcast_topology::Mesh2D;
use mcast_workload::{
    check_scenario, registry_pairs, run_dynamic, scenario_for_case, DynamicConfig,
};

/// A comparable digest of a finished engine: every externally
/// observable result the paper's experiments read.
fn fingerprint(engine: &mut Engine) -> String {
    let completed = engine.take_completed();
    format!(
        "steps={} now={} hops={} inflight={} completed={completed:?}",
        engine.steps(),
        engine.now(),
        engine.flit_hops(),
        engine.in_flight(),
    )
}

/// Injects `n` deterministic dual-path multicasts at time zero — a
/// dense same-timestamp cohort, so cross-partition (time, seq) ties are
/// the common case, not the corner case.
fn inject_burst(engine: &mut Engine, topo: &TopoSpec, n: usize) {
    let router = build_router(topo, &SchemeId::named("dual-path")).expect("dual-path registered");
    let nodes = topo.num_nodes();
    let mut x = 0x2545_f491u64;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let src = (x % nodes as u64) as usize;
        let mut dests = Vec::new();
        let mut y = x;
        while dests.len() < 3 {
            y = y.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let d = (y % nodes as u64) as usize;
            if d != src && !dests.contains(&d) {
                dests.push(d);
            }
        }
        let mc = mcast_core::model::MulticastSet::new(src, dests);
        engine.inject(&router.plan(&mc));
    }
}

fn burst_fingerprint(topo: &TopoSpec, jobs: usize, forced: bool) -> String {
    let built = topo.build();
    let router = build_router(topo, &SchemeId::named("dual-path")).expect("dual-path registered");
    let mut engine = Engine::new(
        Network::new(built.as_dyn(), router.required_classes()),
        SimConfig::default(),
    );
    if forced {
        engine.set_engine_jobs_forced(jobs);
    } else {
        engine.set_engine_jobs(jobs);
    }
    inject_burst(&mut engine, topo, 12);
    assert!(engine.run_to_quiescence(), "burst must drain");
    fingerprint(&mut engine)
}

#[test]
fn same_timestamp_cohorts_order_ties_exactly_like_serial() {
    // Twelve multicasts injected at t = 0 on a 6×6 mesh: the first
    // window is one giant same-timestamp cohort whose (time, seq) ties
    // span many conflict components. Forced mode keeps the full
    // partition/merge machinery engaged even for single-component
    // windows.
    let topo = TopoSpec::parse("mesh:6x6").unwrap();
    let serial = burst_fingerprint(&topo, 1, false);
    for jobs in [2, 3, 4] {
        assert_eq!(
            burst_fingerprint(&topo, jobs, true),
            serial,
            "forced {jobs}-lane burst diverged"
        );
    }
    assert_eq!(
        burst_fingerprint(&topo, 4, false),
        serial,
        "pooled 4-lane burst diverged"
    );
}

#[test]
fn lane_counts_that_do_not_divide_the_node_count_are_exact() {
    // 64 nodes on 3, 5, and 7 lanes: the engine partitions by dynamic
    // conflict components, not by node ranges, so nothing special
    // happens at non-divisors — but it must be *tested* to stay true.
    let mesh = Mesh2D::new(8, 8);
    let cfg = DynamicConfig {
        warmup: 30,
        batch_size: 10,
        min_batches: 2,
        max_batches: 3,
        destinations: 6,
        mean_interarrival_ns: 150_000.0,
        seed: 0xbeef,
        ..DynamicConfig::default()
    };
    let router = mcast_sim::routers::DualPathRouter::mesh(mesh);
    let serial = run_dynamic(&mesh, &router, &cfg);
    for jobs in [3, 5, 7] {
        let par_cfg = DynamicConfig {
            engine_jobs: jobs,
            ..cfg.clone()
        };
        let par = run_dynamic(&mesh, &router, &par_cfg);
        assert_eq!(serial.engine_steps, par.engine_steps, "jobs={jobs}");
        assert_eq!(serial.flit_hops, par.flit_hops, "jobs={jobs}");
        assert_eq!(serial.sim_time_ns, par.sim_time_ns, "jobs={jobs}");
        assert_eq!(serial.completed, par.completed, "jobs={jobs}");
        assert_eq!(
            serial.mean_latency_us, par.mean_latency_us,
            "jobs={jobs}: latency must be f64-equal, not close"
        );
    }
}

#[test]
fn registry_topologies_conform_under_parallel_engine() {
    // The conformance oracle's third leg, forced across a sample of the
    // registry pool that must include irregular custom:<source> graphs:
    // parallel-vs-serial event streams bit-identical AND serial-vs-
    // reference traces bit-identical, per case.
    let pairs = registry_pairs();
    let mut custom_covered = 0;
    let mut cases: Vec<usize> = Vec::new();
    for case in 0..pairs.len() {
        let is_custom = matches!(pairs[case % pairs.len()].0, TopoSpec::Custom { .. });
        if is_custom && custom_covered < 3 {
            custom_covered += 1;
            cases.push(case);
        } else if !is_custom && cases.len() < custom_covered + 5 {
            cases.push(case);
        }
    }
    assert!(custom_covered >= 2, "custom graphs missing from the sample");
    for (i, case) in cases.into_iter().enumerate() {
        let mut s = scenario_for_case(11, case);
        s.engine_jobs = if i % 2 == 0 { 2 } else { 4 };
        let problems = check_scenario(&s, false).unwrap_or_else(|e| panic!("{s}: {e}"));
        assert!(problems.is_empty(), "case {case} ({s}): {problems:?}");
    }
}

#[test]
fn saturating_overload_saturates_identically_in_parallel() {
    // An open-loop overload point: the saturation guard must trip at
    // the same simulated instant with the same backlog under 4 lanes.
    let mesh = Mesh2D::new(8, 8);
    let cfg = DynamicConfig {
        warmup: 30,
        batch_size: 10,
        min_batches: 2,
        max_batches: 4,
        destinations: 6,
        mean_interarrival_ns: 40_000.0,
        seed: 99,
        ..DynamicConfig::default()
    };
    let router = mcast_sim::routers::DualPathRouter::mesh(mesh);
    let serial = run_dynamic(&mesh, &router, &cfg);
    assert!(serial.saturated, "overload point should saturate");
    let par_cfg = DynamicConfig {
        engine_jobs: 4,
        ..cfg
    };
    let par = run_dynamic(&mesh, &router, &par_cfg);
    assert!(par.saturated);
    assert_eq!(serial.engine_steps, par.engine_steps);
    assert_eq!(serial.sim_time_ns, par.sim_time_ns);
    assert_eq!(serial.completed, par.completed);
    assert_eq!(serial.flit_hops, par.flit_hops);
}

/// Runs the §6.4 deadlock configuration under the recovery supervisor
/// at the given lane count and digests everything the supervisor
/// decided: completion, stats, event log, outcomes, final clock.
fn recovering_digest(engine_jobs: usize) -> String {
    let mesh = Mesh2D::new(4, 3);
    let router = build_router(
        &TopoSpec::Mesh2D { w: 4, h: 3 },
        &SchemeId::named("xfirst-tree"),
    )
    .expect("xfirst-tree registered");
    let classes = router.required_classes();
    let supervised = ObliviousRouter::new(router);
    let mut rec = RecoveryEngine::new(
        Network::new(&mesh, classes),
        SimConfig::default(),
        &supervised,
        RecoveryPolicy::default(),
    );
    rec.set_engine_jobs(engine_jobs);
    for mc in fig_6_4_multicasts(&mesh) {
        rec.submit(mc);
    }
    let all_delivered = rec.run();
    format!(
        "delivered={all_delivered} now={} stats={:?} events={:?} outcomes={:?}",
        rec.now(),
        rec.stats(),
        rec.events(),
        rec.outcomes(),
    )
}

/// Drives a streamed (slot-recycling, DESIGN.md §16) engine through
/// `total` dual-path multicasts under an in-flight backpressure cap,
/// asserting the memory model as it goes: every external id completes
/// exactly once, recycled slots never alias a live message, and the
/// slot arena stays bounded by the cap — not by the message count.
/// Returns the completion digest plus the peak gauges.
fn streamed_injection_digest(jobs: usize, total: usize, cap: usize) -> (String, usize, usize) {
    let topo = TopoSpec::parse("mesh:8x8").unwrap();
    let built = topo.build();
    let router = build_router(&topo, &SchemeId::named("dual-path")).expect("dual-path registered");
    let mut engine = Engine::new(
        Network::new(built.as_dyn(), router.required_classes()),
        SimConfig::default(),
    );
    engine.set_stream_mode(true);
    engine.set_engine_jobs(jobs);
    let nodes = topo.num_nodes();
    let mut seen = vec![false; total];
    let mut digest = String::new();
    let mut x = 0x2545_f491u64;
    for i in 0..total {
        while engine.in_flight() >= cap {
            let t = engine
                .next_event_time()
                .expect("streamed run wedged at the cap");
            engine.run_until(t);
            engine.drain_completed(|c| {
                assert!(!seen[c.id], "external id {} completed twice", c.id);
                seen[c.id] = true;
                digest.push_str(&format!("{c:?};"));
            });
        }
        engine.run_until(i as u64 * 2_000);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let src = (x % nodes as u64) as usize;
        let mut dests = Vec::new();
        let mut y = x;
        while dests.len() < 4 {
            y = y.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let d = (y % nodes as u64) as usize;
            if d != src && !dests.contains(&d) {
                dests.push(d);
            }
        }
        let mc = mcast_core::model::MulticastSet::new(src, dests);
        // `inject` hands back the *slot* handle, which recycles under
        // streaming — it must never reach the cap, however many
        // messages have been injected.
        let slot = engine.inject(&router.plan(&mc));
        assert!(slot < cap, "slot {slot} at or past the cap {cap}");
        if i % 97 == 0 {
            // A recycled slot must never alias a live message: every
            // live external id is still uncompleted.
            for live in engine.live_message_ids() {
                assert!(
                    !seen[live],
                    "live id {live} already completed (slot aliasing)"
                );
            }
        }
    }
    assert!(engine.run_to_quiescence(), "streamed tail must drain");
    engine.drain_completed(|c| {
        assert!(!seen[c.id], "external id {} completed twice", c.id);
        seen[c.id] = true;
        digest.push_str(&format!("{c:?};"));
    });
    assert!(
        seen.iter().all(|&s| s),
        "every injected multicast must complete"
    );
    assert!(
        engine.message_slots() <= cap,
        "slot arena ({}) exceeds the in-flight cap ({cap}) — \
         message state grew with the message count",
        engine.message_slots()
    );
    (digest, engine.peak_live_worms(), engine.peak_in_flight())
}

#[test]
fn streamed_injection_bounds_slots_and_never_aliases_live_worms() {
    // 2000 multicasts through a 32-message window: the worm-id space is
    // bounded by the cap (dual-path plans at most two worms per
    // message), and the whole run is bit-identical under 4 lanes.
    let (digest, peak_worms, peak_in_flight) = streamed_injection_digest(1, 2_000, 32);
    assert!(peak_in_flight <= 32, "backpressure ceiling breached");
    assert!(
        peak_worms <= 2 * 32,
        "live worms ({peak_worms}) exceed twice the in-flight cap"
    );
    let (par_digest, par_worms, par_in_flight) = streamed_injection_digest(4, 2_000, 32);
    assert_eq!(digest, par_digest, "4-lane streamed run diverged");
    assert_eq!(peak_worms, par_worms);
    assert_eq!(peak_in_flight, par_in_flight);
}

#[test]
fn deadlocking_run_recovers_identically_under_four_lanes() {
    // The xfirst-tree §6.4 configuration wedges; the watchdog aborts
    // and retries until every destination is delivered. The supervisor
    // reads engine state between events, so bit-identity of the engine
    // implies bit-identity of every abort/retry decision.
    let serial = recovering_digest(1);
    assert!(serial.contains("delivered=true"), "{serial}");
    assert_eq!(serial, recovering_digest(4), "4-lane recovery diverged");
}
