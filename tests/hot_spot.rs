//! Direct verification of §7.2's hot-spot explanation: "When multi-path
//! routing is used to reach a relatively large set of destinations, the
//! source node will likely send on all of its outgoing channels. …
//! In essence, the source node becomes a 'hot spot.'"
//!
//! We run one busy multicasting node amid background traffic and compare
//! the utilization of the source's outgoing channels between dual-path
//! (at most two of them busy per message) and multi-path (up to four).

use mcast::prelude::*;

/// Runs `rounds` large multicasts from a central hot node, with every
/// other node sending light background traffic; returns the mean
/// utilization of the hot node's outgoing channels.
fn hot_node_out_utilization(router: &dyn MulticastRouter, mesh: &Mesh2D) -> f64 {
    let hot = mesh.node(4, 4);
    let mut engine = Engine::new(Network::new(mesh, 1), SimConfig::default());
    let mut gen = MulticastGen::new(mesh.num_nodes(), 0x407);
    let mut t = 0u64;
    for _ in 0..300 {
        engine.run_until(t);
        // The hot node multicasts to a large destination set…
        let mc = gen.multicast_distinct(hot, 30);
        engine.inject(&router.plan(&mc));
        // …while two random nodes send small multicasts.
        for _ in 0..2 {
            let s = gen.source();
            if s != hot {
                let mc = gen.multicast_distinct(s, 3);
                engine.inject(&router.plan(&mc));
            }
        }
        t += 60_000;
    }
    assert!(engine.run_to_quiescence(), "path routing drains");
    let mut total = 0.0;
    let mut n = 0usize;
    for nb in mesh.neighbors(hot) {
        for id in engine.network().ids_of_link(hot, nb) {
            total += engine.channel_utilization(id);
            n += 1;
        }
    }
    total / n as f64
}

#[test]
fn multi_path_source_channels_run_hotter_than_dual_path() {
    let mesh = Mesh2D::new(9, 9);
    let dual = hot_node_out_utilization(&DualPathRouter::mesh(mesh), &mesh);
    let multi = hot_node_out_utilization(&MultiPathMeshRouter::new(mesh), &mesh);
    assert!(
        multi > dual,
        "multi-path source-channel utilization {multi:.3} !> dual-path {dual:.3}"
    );
}

#[test]
fn utilization_accounting_is_sane() {
    let mesh = Mesh2D::new(4, 4);
    let router = DualPathRouter::mesh(mesh);
    let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
    let mc = MulticastSet::new(0, vec![15]);
    engine.inject(&router.plan(&mc));
    assert!(engine.run_to_quiescence());
    // Exactly the path's channels have nonzero busy time; each carried
    // all flits once.
    let busy = engine.channel_busy_ns();
    let nonzero = busy.iter().filter(|&&b| b > 0).count();
    let plan = router.plan(&mc);
    assert_eq!(nonzero, plan.traffic());
    for (id, &b) in busy.iter().enumerate() {
        let u = engine.channel_utilization(id);
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        if b > 0 {
            let cfg = engine.config();
            let expect = cfg.flit_time_ns() * cfg.flits_per_message() as u64 + cfg.routing_delay_ns;
            assert_eq!(b, expect, "channel {id}");
        }
    }
}
