//! Integration tests for the Chapter 6 deadlock-freedom claims, checked
//! two independent ways:
//!
//! 1. **structurally** — channel dependency graphs accumulated from the
//!    actual routes of large multicast batches must be acyclic
//!    (Dally–Seitz);
//! 2. **operationally** — saturating closed scenarios in the flit-level
//!    simulator must drain completely.

use mcast::prelude::*;
use mcast::topology::cdg::ChannelDependencyGraph;

/// Builds a CDG from observed consecutive channel pairs of `paths`.
fn cdg_from_paths(channels: Vec<Channel>, all_paths: &[Vec<NodeId>]) -> ChannelDependencyGraph {
    let mut cdg = ChannelDependencyGraph::new(channels);
    for path in all_paths {
        for w in path.windows(3) {
            let c1 = Channel::new(w[0], w[1]);
            let c2 = Channel::new(w[1], w[2]);
            cdg.add_dependency(c1, c2);
        }
    }
    cdg
}

fn exhaustive_pairs_sets(num_nodes: usize) -> Vec<MulticastSet> {
    // Every (source, destination set drawn deterministically) — a dense
    // family exercising many label patterns.
    let mut out = Vec::new();
    for s in 0..num_nodes {
        for seed in 0..4usize {
            let dests: Vec<NodeId> = (0..6)
                .map(|i| (s + seed * 11 + i * 7 + 1) % num_nodes)
                .collect();
            out.push(MulticastSet::new(s, dests));
        }
    }
    out
}

#[test]
fn dual_path_cdg_acyclic_on_meshes() {
    for (w, h) in [(4usize, 4usize), (6, 6), (5, 7)] {
        let mesh = Mesh2D::new(w, h);
        let labeling = mesh2d_snake(&mesh);
        let mut paths = Vec::new();
        for mc in exhaustive_pairs_sets(mesh.num_nodes()) {
            for p in dual_path(&mesh, &labeling, &mc) {
                paths.push(p.nodes().to_vec());
            }
        }
        let cdg = cdg_from_paths(mesh.channels(), &paths);
        assert!(cdg.is_acyclic(), "{w}x{h} mesh dual-path CDG has a cycle");
    }
}

#[test]
fn multi_and_fixed_path_cdg_acyclic() {
    let mesh = Mesh2D::new(6, 6);
    let labeling = mesh2d_snake(&mesh);
    let mut multi_paths = Vec::new();
    let mut fixed_paths = Vec::new();
    for mc in exhaustive_pairs_sets(mesh.num_nodes()) {
        for p in multi_path_mesh(&mesh, &labeling, &mc) {
            multi_paths.push(p.nodes().to_vec());
        }
        for p in fixed_path(&mesh, &labeling, &mc) {
            fixed_paths.push(p.nodes().to_vec());
        }
    }
    assert!(cdg_from_paths(mesh.channels(), &multi_paths).is_acyclic());
    assert!(cdg_from_paths(mesh.channels(), &fixed_paths).is_acyclic());
}

#[test]
fn hypercube_dual_and_multi_path_cdg_acyclic() {
    let cube = Hypercube::new(5);
    let labeling = hypercube_gray(&cube);
    let mut paths = Vec::new();
    for mc in exhaustive_pairs_sets(cube.num_nodes()) {
        for p in dual_path(&cube, &labeling, &mc) {
            paths.push(p.nodes().to_vec());
        }
        for p in multi_path(&cube, &labeling, &mc) {
            paths.push(p.nodes().to_vec());
        }
    }
    let cdg = cdg_from_paths(cube.channels(), &paths);
    assert!(cdg.is_acyclic(), "5-cube path-based CDG has a cycle");
}

#[test]
fn naive_xfirst_multicast_creates_dependency_cycle() {
    // The §6.1 counterpoint: accumulating the *tree* branch dependencies
    // of naive X-first multicast over many sets does create cycles (the
    // structural signature of Fig 6.4). Tree branch channels at a node
    // depend on each other through the lock-step coupling; model that as
    // mutual dependency between sibling branch channels.
    let mesh = Mesh2D::new(4, 3);
    let mut cdg = ChannelDependencyGraph::new(mesh.channels());
    for mc in exhaustive_pairs_sets(mesh.num_nodes()) {
        let tree = xfirst_tree(&mesh, &mc);
        let children = tree.children_map();
        for (&parent, kids) in &children {
            // Sequential dependencies parent-channel → child-channel.
            if let Some(gp) = tree.parent(parent) {
                for &k in kids {
                    cdg.add_dependency(Channel::new(gp, parent), Channel::new(parent, k));
                }
            }
            // Lock-step coupling: each branch waits on its siblings.
            for &a in kids {
                for &b in kids {
                    if a != b {
                        cdg.add_dependency(Channel::new(parent, a), Channel::new(parent, b));
                    }
                }
            }
        }
    }
    assert!(
        !cdg.is_acyclic(),
        "naive X-first multicast should exhibit dependency cycles"
    );
}

#[test]
fn dc_tree_channels_partition_into_acyclic_subnetworks() {
    use mcast::topology::partition::{quadrant_channels, Quadrant};
    let mesh = Mesh2D::new(6, 6);
    for q in Quadrant::ALL {
        let channels = quadrant_channels(&mesh, q);
        let mut cdg = ChannelDependencyGraph::new(channels.clone());
        // Within a quadrant subnetwork all trees route X-first: any
        // consecutive channel pair (c1 into node, c2 out of node) with
        // directions in the quadrant and no Y→X turn.
        for &c1 in &channels {
            for &c2 in &channels {
                if c1.to != c2.from {
                    continue;
                }
                let d1 = mesh.channel_direction(Channel::new(c1.from, c1.to));
                let d2 = mesh.channel_direction(Channel::new(c2.from, c2.to));
                let vertical = |d: Dir2| matches!(d, Dir2::PosY | Dir2::NegY);
                if vertical(d1) && !vertical(d2) {
                    continue; // X-first: never turn from Y back to X
                }
                cdg.add_dependency(c1, c2);
            }
        }
        assert!(cdg.is_acyclic(), "{q:?} subnetwork must be acyclic");
    }
}

#[test]
fn stress_every_node_multicasting_simultaneously() {
    // 36 simultaneous 8-destination multicasts on a 6×6 mesh, all three
    // path schemes and the dc-tree: everything must drain.
    let mesh = Mesh2D::new(6, 6);
    let mcs: Vec<MulticastSet> = (0..mesh.num_nodes())
        .map(|s| MulticastSet::new(s, (1..=8).map(|i| (s * 5 + i * 4 + 2) % 36)))
        .collect();
    let routers: Vec<Box<dyn MulticastRouter>> = vec![
        Box::new(DualPathRouter::mesh(mesh)),
        Box::new(MultiPathMeshRouter::new(mesh)),
        Box::new(FixedPathRouter::mesh(mesh)),
        Box::new(DoubleChannelTreeRouter::new(mesh)),
    ];
    for router in &routers {
        let mut engine = Engine::new(
            Network::new(&mesh, router.required_classes()),
            SimConfig::default(),
        );
        for mc in &mcs {
            engine.inject(&router.plan(mc));
        }
        assert!(
            engine.run_to_quiescence(),
            "{} wedged under saturating closed load",
            router.name()
        );
        assert_eq!(engine.take_completed().len(), 36);
    }
}

#[test]
fn stress_hypercube_simultaneous_broadcasts() {
    // All 16 nodes of a 4-cube broadcast simultaneously via dual-path —
    // the nightmare scenario for the nCUBE-2 scheme.
    let cube = Hypercube::new(4);
    let router = DualPathRouter::hypercube(cube);
    let mut engine = Engine::new(Network::new(&cube, 1), SimConfig::default());
    for s in 0..cube.num_nodes() {
        let all: Vec<NodeId> = (0..cube.num_nodes()).collect();
        engine.inject(&router.plan(&MulticastSet::new(s, all)));
    }
    assert!(
        engine.run_to_quiescence(),
        "16 simultaneous dual-path broadcasts wedged"
    );
}
