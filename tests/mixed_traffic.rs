//! The unicast/multicast interaction finding (§8.2's open problem made
//! concrete): XY-routed unicast traffic sharing single channels with
//! dual-path multicast traffic is **not** deadlock-free — the two
//! disciplines' combined channel dependency graph has cycles, and the
//! simulator exhibits the wedge. Routing unicasts as k = 1 multicasts
//! through the same label-monotone function restores deadlock freedom.

use mcast::prelude::*;
use mcast::routing::geometry::RoutingGeometry;
use mcast::sim::plan::{PlanPath, PlanWorm};
use mcast::topology::cdg::ChannelDependencyGraph;

/// Builds the union CDG of XY unicast routes and dual-path multicast
/// routes over a dense route family.
fn combined_cdg(mesh: &Mesh2D) -> ChannelDependencyGraph {
    let labeling = mesh2d_snake(mesh);
    let mut cdg = ChannelDependencyGraph::new(mesh.channels());
    let add_path = |cdg: &mut ChannelDependencyGraph, path: &[NodeId]| {
        for w in path.windows(3) {
            cdg.add_dependency(Channel::new(w[0], w[1]), Channel::new(w[1], w[2]));
        }
    };
    for s in 0..mesh.num_nodes() {
        for t in 0..mesh.num_nodes() {
            if s == t {
                continue;
            }
            let xy = mesh.shortest_path(s, t);
            add_path(&mut cdg, &xy);
        }
        for seed in 0..3usize {
            let dests: Vec<NodeId> = (0..5)
                .map(|i| (s + seed * 13 + i * 7 + 1) % mesh.num_nodes())
                .collect();
            let mc = MulticastSet::new(s, dests);
            for p in dual_path(mesh, &labeling, &mc) {
                add_path(&mut cdg, p.nodes());
            }
        }
    }
    cdg
}

#[test]
fn combined_xy_and_dual_path_cdg_is_cyclic() {
    let mesh = Mesh2D::new(6, 6);
    let cdg = combined_cdg(&mesh);
    let cycle = cdg
        .find_cycle()
        .expect("XY + dual-path must create a dependency cycle");
    // The witness chains head-to-tail and closes.
    assert_eq!(cycle.first(), cycle.last());
    for w in cycle.windows(2) {
        assert_eq!(w[0].to, w[1].from);
    }
}

#[test]
fn xy_alone_and_dual_path_alone_are_each_acyclic() {
    let mesh = Mesh2D::new(6, 6);
    let labeling = mesh2d_snake(&mesh);
    let mut xy_cdg = ChannelDependencyGraph::new(mesh.channels());
    let mut dp_cdg = ChannelDependencyGraph::new(mesh.channels());
    for s in 0..mesh.num_nodes() {
        for t in 0..mesh.num_nodes() {
            if s == t {
                continue;
            }
            let xy = mesh.shortest_path(s, t);
            for w in xy.windows(3) {
                xy_cdg.add_dependency(Channel::new(w[0], w[1]), Channel::new(w[1], w[2]));
            }
        }
        for seed in 0..3usize {
            let dests: Vec<NodeId> = (0..5)
                .map(|i| (s + seed * 13 + i * 7 + 1) % mesh.num_nodes())
                .collect();
            let mc = MulticastSet::new(s, dests);
            for p in dual_path(&mesh, &labeling, &mc) {
                for w in p.nodes().windows(3) {
                    dp_cdg.add_dependency(Channel::new(w[0], w[1]), Channel::new(w[1], w[2]));
                }
            }
        }
    }
    assert!(xy_cdg.is_acyclic(), "XY unicast alone is deadlock-free");
    assert!(dp_cdg.is_acyclic(), "dual-path alone is deadlock-free");
}

/// Replays a seeded mixed workload; returns whether it drained.
fn mixed_drains(mesh: &Mesh2D, xy_unicasts: bool, seed: u64) -> bool {
    let labeling = mesh2d_snake(mesh);
    let router = DualPathRouter::mesh(*mesh);
    let mut engine = Engine::new(Network::new(mesh, 1), SimConfig::default());
    let mut gen = MulticastGen::new(mesh.num_nodes(), seed);
    let mut t = 0u64;
    for i in 0..4000usize {
        engine.run_until(t);
        let src = gen.source();
        if i % 2 == 0 {
            let mc = gen.multicast_distinct(src, 8);
            engine.inject(&router.plan(&mc));
        } else {
            let mut dest = gen.source();
            while dest == src {
                dest = gen.source();
            }
            let nodes = if xy_unicasts {
                mesh.shortest_path(src, dest)
            } else {
                mcast::routing::routing_fn::r_path(mesh, &labeling, src, dest)
            };
            let plan = DeliveryPlan {
                source: src,
                destinations: vec![dest],
                worms: vec![PlanWorm::Path(PlanPath {
                    nodes,
                    class: ClassChoice::Any,
                })],
            };
            engine.inject(&plan);
        }
        t += 2_000; // heavy: one injection every 2 µs network-wide
        if engine.in_flight() > 3000 {
            break;
        }
    }
    engine.run_to_quiescence()
}

#[test]
fn mixing_xy_unicast_with_dual_path_deadlocks() {
    let mesh = Mesh2D::new(8, 8);
    // Several seeds: at least one must wedge (in practice the first does).
    let wedged = (0..5u64).any(|seed| !mixed_drains(&mesh, true, seed));
    assert!(
        wedged,
        "expected XY+dual-path mixing to wedge under heavy load"
    );
}

#[test]
fn routing_unicasts_through_r_is_deadlock_free() {
    let mesh = Mesh2D::new(8, 8);
    for seed in 0..5u64 {
        assert!(
            mixed_drains(&mesh, false, seed),
            "seed {seed}: R-routed unicasts + dual-path must drain"
        );
    }
}
