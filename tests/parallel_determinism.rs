//! Regression test for the parallel sweep runner: fanning the
//! Chapter-7 grid (loads × schemes × replications) across threads must
//! be **bit-identical** to the serial run — same latencies, same
//! saturation flags, same completion counts, same simulated clocks —
//! for a fixed seed set, at any job count.

use mcast_sim::routers::{DualPathRouter, MultiPathMeshRouter, MulticastRouter};
use mcast_topology::Mesh2D;
use mcast_workload::{
    aggregate_sweep, replication_seed, run_dynamic_sweep, sweep_points, DynamicConfig, SweepConfig,
    SweepRow,
};

fn grid() -> SweepConfig {
    SweepConfig {
        base: DynamicConfig {
            warmup: 40,
            batch_size: 15,
            min_batches: 2,
            max_batches: 4,
            destinations: 6,
            seed: 0xd15_5e17,
            ..DynamicConfig::default()
        },
        // Includes a heavy point so the saturation flag is exercised.
        loads_ns: vec![700_000.0, 400_000.0, 60_000.0],
        replications: 3,
        stream: None,
    }
}

fn run_grid(jobs: usize) -> Vec<SweepRow> {
    let mesh = Mesh2D::new(8, 8);
    let dual = DualPathRouter::mesh(mesh);
    let multi = MultiPathMeshRouter::new(mesh);
    let routers: [(&str, &(dyn MulticastRouter + Sync)); 2] =
        [("dual-path", &dual), ("multi-path", &multi)];
    run_dynamic_sweep(&mesh, &routers, &grid(), jobs)
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = run_grid(1);
    assert_eq!(serial.len(), 2 * 3 * 3);
    // At least one heavy point must saturate for the flag comparison to
    // mean anything.
    assert!(
        serial.iter().any(|r| r.result.saturated),
        "overload point should saturate"
    );

    for jobs in [2, 4, 8] {
        let parallel = run_grid(jobs);
        assert_eq!(serial.len(), parallel.len(), "jobs={jobs}");
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.point, p.point, "jobs={jobs}");
            let ctx = format!("jobs={jobs} point={:?}", s.point);
            // Latencies: exact f64 equality, not epsilon comparison.
            assert_eq!(
                s.result.mean_latency_us, p.result.mean_latency_us,
                "mean latency, {ctx}"
            );
            assert_eq!(s.result.ci_us, p.result.ci_us, "ci, {ctx}");
            assert_eq!(
                s.result.latency_stats.mean(),
                p.result.latency_stats.mean(),
                "latency accumulator, {ctx}"
            );
            assert_eq!(
                s.result.latency_hist_ns.p99(),
                p.result.latency_hist_ns.p99(),
                "p99, {ctx}"
            );
            // Saturation flags.
            assert_eq!(s.result.saturated, p.result.saturated, "saturated, {ctx}");
            assert_eq!(s.result.converged, p.result.converged, "converged, {ctx}");
            // Completion counts.
            assert_eq!(s.result.completed, p.result.completed, "completed, {ctx}");
            assert_eq!(s.result.measured, p.result.measured, "measured, {ctx}");
            assert_eq!(s.result.batches, p.result.batches, "batches, {ctx}");
            // Engine-level clocks and work.
            assert_eq!(s.result.sim_time_ns, p.result.sim_time_ns, "clock, {ctx}");
            assert_eq!(s.result.flit_hops, p.result.flit_hops, "flit hops, {ctx}");
        }
    }
}

#[test]
fn aggregates_merge_identically_across_job_counts() {
    let serial = aggregate_sweep(&run_grid(1));
    let parallel = aggregate_sweep(&run_grid(4));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.scheme, p.scheme);
        assert_eq!(s.mean_interarrival_ns, p.mean_interarrival_ns);
        assert_eq!(s.latency_us.count(), p.latency_us.count());
        assert_eq!(s.latency_us.mean(), p.latency_us.mean());
        assert_eq!(s.latency_us.variance(), p.latency_us.variance());
        assert_eq!(s.saturated, p.saturated);
        assert_eq!(s.completed, p.completed);
        assert_eq!(s.flit_hops, p.flit_hops);
    }
}

#[test]
fn point_seeds_depend_on_position_not_thread() {
    let cfg = grid();
    let points = sweep_points(&["a", "b"], &cfg);
    assert_eq!(points.len(), 2 * 3 * 3);
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.seed, replication_seed(cfg.base.seed, i as u64));
    }
    // Rebuilding yields the same seeds (no hidden global state).
    assert_eq!(points, sweep_points(&["a", "b"], &cfg));
}
