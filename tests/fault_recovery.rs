//! Property tests for the fault model: fault-aware planners must route
//! around any masked channel, deliver to every reachable destination,
//! degrade to the healthy planners under an empty mask, and the
//! recovery engine must deliver everything whenever the survivors stay
//! connected.

use mcast::prelude::*;
use mcast_core::fault_route::{fault_dual_path, fault_multi_path_mesh};
use mcast_sim::recovery::{FaultDualPathRouter, RecoveryEngine, RecoveryPolicy};
use mcast_topology::{FaultEvent, FaultMask, FaultSchedule};
use proptest::prelude::*;

/// Strategy: a mesh, a multicast set on it, a mask seed, and a fault
/// rate in `[0, max_rate)`.
fn mesh_case(max_rate: f64) -> impl Strategy<Value = (Mesh2D, MulticastSet, u64, f64)> {
    (3usize..=8, 3usize..=8).prop_flat_map(move |(w, h)| {
        let n = w * h;
        (
            0..n,
            proptest::collection::vec(0..n, 1..=10),
            0u64..1_000_000,
            0.0..max_rate,
        )
            .prop_map(move |(s, d, seed, rate)| {
                (Mesh2D::new(w, h), MulticastSet::new(s, d), seed, rate)
            })
    })
}

/// Every consecutive hop of every path survives the mask, and every
/// destination is covered by the union of paths.
fn assert_paths_avoid_mask(
    paths: &[PathRoute],
    mask: &FaultMask,
    mc: &MulticastSet,
) -> Result<(), TestCaseError> {
    for p in paths {
        for w in p.nodes().windows(2) {
            prop_assert!(
                mask.is_link_alive(w[0], w[1]),
                "path routes through masked link {} -> {}",
                w[0],
                w[1]
            );
        }
    }
    for &d in &mc.destinations {
        prop_assert!(
            paths.iter().any(|p| p.nodes().contains(&d)),
            "reachable destination {d} not covered"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fault_dual_path_avoids_masked_links_and_covers_mesh(
        (mesh, mc, seed, rate) in mesh_case(0.4)
    ) {
        let mask = FaultMask::random_links_connected(&mesh, rate, seed);
        let labeling = mesh2d_snake(&mesh);
        let routed = fault_dual_path(&mesh, &labeling, &mask, &mc).unwrap();
        // Connectivity-preserving masks leave every node reachable.
        prop_assert!(routed.unreachable.is_empty());
        assert_paths_avoid_mask(&routed.paths, &mask, &mc)?;
    }

    #[test]
    fn fault_multi_path_avoids_masked_links_and_covers_mesh(
        (mesh, mc, seed, rate) in mesh_case(0.4)
    ) {
        let mask = FaultMask::random_links_connected(&mesh, rate, seed);
        let labeling = mesh2d_snake(&mesh);
        let routed = fault_multi_path_mesh(&mesh, &labeling, &mask, &mc).unwrap();
        prop_assert!(routed.unreachable.is_empty());
        assert_paths_avoid_mask(&routed.paths, &mask, &mc)?;
    }

    #[test]
    fn fault_dual_path_avoids_masked_links_on_cube(
        (cube, mc, seed, rate) in (2u32..=6).prop_flat_map(|dim| {
            let n = 1usize << dim;
            (0..n, proptest::collection::vec(0..n, 1..=10), 0u64..1_000_000, 0.0..0.3f64).prop_map(
                move |(s, d, seed, rate)| {
                    (Hypercube::new(dim), MulticastSet::new(s, d), seed, rate)
                },
            )
        })
    ) {
        let mask = FaultMask::random_links_connected(&cube, rate, seed);
        let labeling = hypercube_gray(&cube);
        let routed = fault_dual_path(&cube, &labeling, &mask, &mc).unwrap();
        prop_assert!(routed.unreachable.is_empty());
        assert_paths_avoid_mask(&routed.paths, &mask, &mc)?;
    }

    #[test]
    fn empty_mask_reproduces_healthy_dual_path(
        (mesh, mc, _seed, _rate) in mesh_case(0.1)
    ) {
        let labeling = mesh2d_snake(&mesh);
        let routed = fault_dual_path(&mesh, &labeling, &FaultMask::none(), &mc).unwrap();
        let healthy = dual_path(&mesh, &labeling, &mc);
        prop_assert_eq!(routed.paths, healthy, "empty mask must be bit-identical");
        prop_assert!(routed.provably_deadlock_free());
    }

    /// End to end: under any connectivity-preserving static mask, the
    /// recovery engine with the fault-aware dual-path router delivers
    /// every destination of every message.
    #[test]
    fn recovery_delivers_everything_while_connected(
        (mesh, mcs, seed, rate) in (3usize..=6, 3usize..=6).prop_flat_map(|(w, h)| {
            let n = w * h;
            let mc = (0..n, proptest::collection::vec(0..n, 1..=6))
                .prop_map(|(s, d)| MulticastSet::new(s, d));
            (proptest::collection::vec(mc, 1..=5), 0u64..1_000_000, 0.0..0.35f64)
                .prop_map(move |(mcs, seed, rate)| (Mesh2D::new(w, h), mcs, seed, rate))
        })
    ) {
        let mask = FaultMask::random_links_connected(&mesh, rate, seed);
        let router = FaultDualPathRouter::mesh(mesh);
        let network = Network::new(&mesh, 1);
        let mut rec = RecoveryEngine::new(
            network,
            SimConfig::default(),
            &router,
            RecoveryPolicy::default(),
        )
        .with_initial_faults(&mask);
        let expected: usize = mcs.iter().map(|mc| mc.k()).sum();
        for (i, mc) in mcs.into_iter().enumerate() {
            rec.submit_at(i as u64 * 500, mc);
        }
        prop_assert!(rec.run(), "all messages must resolve with full delivery");
        let (delivered, total) = rec.delivery_counts();
        prop_assert_eq!(delivered, total);
        prop_assert_eq!(total, expected);
    }

    /// A single link failing mid-flight never prevents delivery as long
    /// as the survivors stay connected: the watchdog aborts any severed
    /// worm and the retry routes around the dead link.
    #[test]
    fn recovery_survives_one_mid_flight_link_failure(
        (mesh, mc, link_idx, at) in (4usize..=6, 4usize..=6).prop_flat_map(|(w, h)| {
            let n = w * h;
            (0..n, proptest::collection::vec(0..n, 1..=6), 0usize..10_000, 100u64..20_000)
                .prop_map(move |(s, d, li, at)| {
                    (Mesh2D::new(w, h), MulticastSet::new(s, d), li, at)
                })
        })
    ) {
        // Pick a failing link (by index into the undirected link list)
        // that keeps the mesh connected.
        let links: Vec<(usize, usize)> = mesh
            .channels()
            .into_iter()
            .filter(|c| c.from < c.to)
            .map(|c| (c.from, c.to))
            .collect();
        let (a, b) = links[link_idx % links.len()];
        let mut mask = FaultMask::none();
        mask.fail_link(a, b);
        prop_assume!(mask.keeps_connected(&mesh));

        let router = FaultDualPathRouter::mesh(mesh);
        let mut rec = RecoveryEngine::new(
            Network::new(&mesh, 1),
            SimConfig::default(),
            &router,
            RecoveryPolicy::default(),
        );
        let mut schedule = FaultSchedule::none();
        schedule.push(at, FaultEvent::LinkDown(a, b));
        rec.set_schedule(schedule);
        let k = mc.k();
        rec.submit(mc);
        prop_assert!(rec.run(), "single-link mid-flight failure must be survivable");
        let (delivered, total) = rec.delivery_counts();
        prop_assert_eq!(delivered, total);
        prop_assert_eq!(total, k);
    }
}
