//! Property-based tests (proptest) over the core invariants: route
//! validity, destination coverage, label monotonicity, shortest-path
//! guarantees, Gray-code bijectivity, and simulator delivery.

use mcast::prelude::*;
use proptest::prelude::*;

/// Strategy: a mesh between 2×2 and 9×9 plus a multicast set on it.
fn mesh_and_multicast() -> impl Strategy<Value = (Mesh2D, MulticastSet)> {
    (2usize..=9, 2usize..=9).prop_flat_map(|(w, h)| {
        let n = w * h;
        (Just((w, h)), 0..n, proptest::collection::vec(0..n, 1..=12)).prop_map(
            move |((w, h), src, dests)| (Mesh2D::new(w, h), MulticastSet::new(src, dests)),
        )
    })
}

/// Strategy: a hypercube (dim 2..=7) plus a multicast set.
fn cube_and_multicast() -> impl Strategy<Value = (Hypercube, MulticastSet)> {
    (2u32..=7).prop_flat_map(|dim| {
        let n = 1usize << dim;
        (Just(dim), 0..n, proptest::collection::vec(0..n, 1..=12))
            .prop_map(move |(dim, src, dests)| (Hypercube::new(dim), MulticastSet::new(src, dests)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dual_path_valid_and_monotone_on_mesh((mesh, mc) in mesh_and_multicast()) {
        let labeling = mesh2d_snake(&mesh);
        let paths = dual_path(&mesh, &labeling, &mc);
        let route = MulticastRoute::Star(paths.clone());
        prop_assert!(route.validate(&mesh, &mc).is_ok());
        for p in &paths {
            let labels: Vec<usize> = p.nodes().iter().map(|&n| labeling.label(n)).collect();
            let increasing = labels[1] > labels[0];
            prop_assert!(labels.windows(2).all(|w| (w[1] > w[0]) == increasing));
        }
        // Each destination on exactly one path, visited exactly once.
        for &d in &mc.destinations {
            let visits: usize = paths
                .iter()
                .map(|p| p.nodes().iter().filter(|&&x| x == d).count())
                .sum();
            prop_assert_eq!(visits, 1);
        }
    }

    #[test]
    fn multi_path_never_longer_reach_than_dual((mesh, mc) in mesh_and_multicast()) {
        let labeling = mesh2d_snake(&mesh);
        let dual = MulticastRoute::Star(dual_path(&mesh, &labeling, &mc));
        let multi = MulticastRoute::Star(multi_path_mesh(&mesh, &labeling, &mc));
        prop_assert!(multi.validate(&mesh, &mc).is_ok());
        if mc.k() > 0 {
            let dm = dual.max_dest_hops(&mc).unwrap();
            let mm = multi.max_dest_hops(&mc).unwrap();
            prop_assert!(mm <= dm, "multi reach {} > dual reach {}", mm, dm);
        }
    }

    #[test]
    fn fixed_path_traffic_at_least_dual((mesh, mc) in mesh_and_multicast()) {
        let labeling = mesh2d_snake(&mesh);
        let dual = MulticastRoute::Star(dual_path(&mesh, &labeling, &mc));
        let fixed = MulticastRoute::Star(fixed_path(&mesh, &labeling, &mc));
        prop_assert!(fixed.validate(&mesh, &mc).is_ok());
        prop_assert!(fixed.traffic() >= dual.traffic());
    }

    #[test]
    fn cube_dual_path_valid_and_shortest_segments((cube, mc) in cube_and_multicast()) {
        let labeling = hypercube_gray(&cube);
        let paths = dual_path(&cube, &labeling, &mc);
        let route = MulticastRoute::Star(paths.clone());
        prop_assert!(route.validate(&cube, &mc).is_ok());
        // Lemma 6.4: each inter-destination segment of a path is a
        // shortest path.
        for p in &paths {
            let mut stops = vec![p.nodes()[0]];
            stops.extend(mc.destinations.iter().copied().filter(|&d| p.hops_to(d).is_some()));
            stops.sort_by_key(|&d| p.hops_to(d).unwrap());
            for w in stops.windows(2) {
                let seg = p.hops_to(w[1]).unwrap() - p.hops_to(w[0]).unwrap();
                prop_assert_eq!(seg, cube.distance(w[0], w[1]),
                    "segment {}->{} not shortest", w[0], w[1]);
            }
        }
    }

    #[test]
    fn mt_heuristics_shortest_paths((mesh, mc) in mesh_and_multicast()) {
        let xf = xfirst_tree(&mesh, &mc);
        let dg = divided_greedy_tree(&mesh, &mc);
        for &d in &mc.destinations {
            prop_assert_eq!(xf.depth_of(d), Some(mesh.distance(mc.source, d)));
            prop_assert_eq!(dg.depth_of(d), Some(mesh.distance(mc.source, d)));
        }
        // Divided greedy beats X-first *on average* (Fig 7.5, asserted in
        // paper_claims); per instance it is a heuristic and may lose a
        // little, but never pathologically (both are shortest-path trees).
        prop_assert!(
            dg.traffic() <= xf.traffic() * 3 / 2 + 4,
            "divided greedy {} wildly exceeds X-first {}",
            dg.traffic(),
            xf.traffic()
        );
    }

    #[test]
    fn sorted_mp_visits_in_key_order((mesh, mc) in mesh_and_multicast()) {
        prop_assume!(mesh.width() % 2 == 0 || mesh.height() % 2 == 0);
        let cycle = mesh2d_cycle(&mesh);
        let p = sorted_mp(&mesh, &cycle, &mc);
        let route = MulticastRoute::Path(p.clone());
        prop_assert!(route.validate(&mesh, &mc).is_ok());
        let keys: Vec<usize> = p.nodes().iter().map(|&x| cycle.f(mc.source, x)).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn greedy_st_tree_and_bounds((cube, mc) in cube_and_multicast()) {
        let st = greedy_st(&cube, &mc);
        prop_assert!(st.validate(&mc).is_ok());
        let mu: usize = mc.destinations.iter().map(|&d| cube.distance(mc.source, d)).sum();
        prop_assert!(st.traffic(&cube) <= mu);
        if mc.k() > 0 {
            // A tree containing k destinations needs at least the
            // distance to the farthest one.
            let far = mc.destinations.iter().map(|&d| cube.distance(mc.source, d)).max().unwrap();
            prop_assert!(st.traffic(&cube) >= far);
        }
    }

    #[test]
    fn gray_code_bijective_and_adjacent(dim in 1u32..=14) {
        use mcast::topology::gray::{gray_decode, gray_encode};
        let n = 1usize << dim;
        // Spot-check bijectivity over a window plus adjacency.
        for i in (0..n).step_by((n / 256).max(1)) {
            prop_assert_eq!(gray_decode(gray_encode(i)), i);
            if i + 1 < n {
                let d = gray_encode(i) ^ gray_encode(i + 1);
                prop_assert_eq!(d.count_ones(), 1);
            }
        }
    }

    #[test]
    fn simulator_delivers_exactly_what_routing_promises((mesh, mc) in mesh_and_multicast()) {
        prop_assume!(mc.k() > 0);
        let router = MultiPathMeshRouter::new(mesh);
        let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
        let plan = router.plan(&mc);
        engine.inject(&plan);
        prop_assert!(engine.run_to_quiescence());
        let done = engine.take_completed();
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(done[0].deliveries.len(), mc.k());
        for &(d, t) in &done[0].deliveries {
            prop_assert!(mc.destinations.contains(&d));
            prop_assert!(t >= done[0].injected_at);
        }
        prop_assert_eq!(done[0].traffic, plan.traffic());
    }

    #[test]
    fn dc_tree_valid_and_quadrant_confined((mesh, mc) in mesh_and_multicast()) {
        let parts = dc_xfirst(&mesh, &mc);
        let route = MulticastRoute::Forest(parts.iter().map(|p| p.tree.clone()).collect());
        prop_assert!(route.validate(&mesh, &mc).is_ok());
        for part in &parts {
            for (p, c) in part.tree.edges() {
                prop_assert!(part.quadrant.contains_dir(mesh.direction(p, c)));
            }
        }
    }
}
