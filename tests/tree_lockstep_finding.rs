//! The lock-step replication finding (EXPERIMENTS.md):
//!
//! Assertion 1 proves the double-channel X-first tree scheme free of
//! channel-*acquisition* cycles (each quadrant subnetwork's channels can
//! be totally ordered). Under strict flit-level wormhole replication with
//! single-flit buffers, however, a branch that stalls exerts backpressure
//! on its *siblings* through the shared replication buffer, so the
//! release of an already-acquired channel can depend on a channel the
//! same tree is still waiting for — an AND-coupled dependency outside the
//! acquisition order. Concurrent trees in the same quadrant subnetwork
//! can then wedge.
//!
//! With a message-sized replication buffer per branch node — the virtual
//! cut-through router design the dissertation itself references ([21]) —
//! branches decouple and the scheme is deadlock-free as claimed.
//!
//! These tests pin both behaviours with a deterministic seeded workload.

use mcast::prelude::*;

/// Replays a seeded Poisson dc-tree workload and reports whether the
/// network drained after injection stopped.
fn drained(buffer_flits: u32, seed: u64, messages: usize, interarrival_ns: f64) -> bool {
    let mesh = Mesh2D::new(8, 8);
    let router = DoubleChannelTreeRouter::new(mesh);
    let config = SimConfig {
        buffer_flits,
        ..SimConfig::default()
    };
    let mut engine = Engine::new(Network::new(&mesh, 2), config);
    let mut gens: Vec<MulticastGen> = (0..mesh.num_nodes())
        .map(|n| MulticastGen::new(mesh.num_nodes(), seed + n as u64))
        .collect();
    let mut next: Vec<u64> = (0..mesh.num_nodes())
        .map(|n| gens[n].exponential_ns(interarrival_ns))
        .collect();
    for _ in 0..messages {
        let (node, &t) = next
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .expect("generators exist");
        engine.run_until(t);
        let mc = gens[node].multicast_distinct(node, 10);
        engine.inject(&router.plan(&mc));
        next[node] = t + gens[node].exponential_ns(interarrival_ns);
        if engine.in_flight() > 3000 {
            break; // already hopeless; skip to the drain check
        }
    }
    engine.run_to_quiescence()
}

#[test]
fn lockstep_replication_wedges_under_poisson_load() {
    // Seed 1000 at 1.2 ms/node reproduces the wedge (the same workload
    // family as Fig 7.8's second row).
    assert!(
        !drained(1, 1000, 20_000, 1_200_000.0),
        "expected the strict lock-step tree network to wedge"
    );
}

#[test]
fn vct_replication_buffers_restore_deadlock_freedom() {
    // Same workload, message-sized replication buffers: drains.
    let flits = SimConfig::default().flits_per_message();
    assert!(
        drained(flits, 1000, 20_000, 1_200_000.0),
        "VCT-buffered trees must drain the identical workload"
    );
}

#[test]
fn lockstep_is_fine_at_light_staggered_load() {
    // The wedge needs concurrency: widely staggered messages complete
    // even under strict lock-step (matching the closed-scenario tests).
    assert!(drained(1, 1000, 600, 8_000_000.0));
}
