//! Acceptance tests for the supervised job-execution service
//! (DESIGN.md §13): worker panics, runaway jobs, a mid-batch hard kill
//! with a torn journal tail, and restart recovery. The ledger invariant
//! `accepted = completed + failed + shed` must hold at every
//! observation point, no job may be lost or duplicated, and a completed
//! spec must re-serve byte-identical results from the cache.

use std::path::PathBuf;

use mcast_workload::{
    chaos_self_test, ChaosConfig, JobOutcome, JobServer, RetryPolicy, ServeConfig, SubmitStatus,
};

fn test_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mcast-serve-accept-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_json(name: &str, seed: u64, load_us: u64) -> String {
    format!(
        r#"{{"name": "{name}", "topology": "mesh:4x4",
            "schemes": ["dual-path"], "loads_us": [{load_us}],
            "destinations": 3, "replications": 1, "seed": {seed},
            "stopping": {{"warmup": 10, "batch_size": 10,
                          "min_batches": 2, "max_batches": 3}}}}"#
    )
}

/// The full built-in chaos drill: injected panics and stalls, an
/// in-flight hard kill, a torn journal line, restart, re-drain. The
/// report's own assertions (balance, coverage, byte-identical cache
/// re-serves) ran inside; here we re-check the headline claims.
#[test]
fn chaos_self_test_survives_panics_stalls_and_hard_kill() {
    for seed in [7u64, 0xc4a05] {
        let dir = test_dir(&format!("chaos-{seed}"));
        let report = chaos_self_test(&dir, seed).expect("chaos self-test must pass");
        assert!(report.ledger.balanced(), "seed {seed}: {}", report.ledger);
        assert_eq!(report.submitted, 11, "seed {seed}");
        assert!(
            report.cache_verified > 0,
            "seed {seed}: at least one byte-identical cache re-serve"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Hand-driven crash/restart: submit a batch, hard-kill the journal
/// mid-run (appends silently lost from that point, plus a torn final
/// line), reopen, and drain. Nothing is lost: every accepted job
/// reaches a terminal outcome, completed work is served from the cache
/// byte-for-byte, and incomplete work is re-run — not duplicated.
#[test]
fn kill_and_restart_resumes_without_losing_or_duplicating_jobs() {
    let dir = test_dir("restart");
    let specs: Vec<String> = (0..4)
        .map(|i| spec_json(&format!("r{i}"), 11 + i, 700))
        .collect();

    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    {
        let server = JobServer::open(&dir, cfg.clone()).expect("open");
        for s in &specs {
            let (_, st) = server.submit_text(s).expect("submit");
            assert_eq!(st, SubmitStatus::Queued);
        }
        // 4 accept records are durable; everything the workers would
        // journal from here on is lost, as after a SIGKILL.
        server.journal().crash_after_appends(0);
        server.run_until_drained();
        assert!(server.journal().is_frozen(), "the kill must have landed");
    }
    // A torn final line, as when the process died mid-write. Replay
    // must skip it rather than refuse the journal.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("journal.log"))
            .unwrap();
        f.write_all(b"{\"rec\":\"done\",\"job\":").unwrap();
    }

    let server = JobServer::open(&dir, cfg).expect("reopen");
    let replayed = server.ledger();
    assert_eq!(replayed.accepted, 4, "accepts were fsync'd before the kill");
    assert!(replayed.balanced() || server.queued() > 0);
    assert_eq!(
        server.queued(),
        4,
        "no terminal record survived, so all 4 jobs must be re-queued"
    );
    server.run_until_drained();
    let ledger = server.ledger();
    assert!(ledger.balanced(), "{ledger}");
    assert_eq!(ledger.accepted, 4);
    assert_eq!(ledger.completed, 4);
    assert_eq!(ledger.failed + ledger.shed, 0);
    let outcomes = server.outcomes();
    assert_eq!(
        outcomes.len(),
        4,
        "every job has exactly one terminal outcome"
    );

    // Byte-identical cache re-serves: resubmitting a completed spec is
    // answered from the cache with the same canonical result text.
    for s in &specs {
        let first = server.cached_result(s).expect("result cached");
        let (_, st) = server.submit_text(s).expect("resubmit");
        assert_eq!(st, SubmitStatus::Cached);
        assert_eq!(server.cached_result(s).unwrap(), first, "byte-identical");
    }
    let final_ledger = server.ledger();
    assert!(final_ledger.balanced(), "{final_ledger}");
    assert_eq!(final_ledger.accepted, 8);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Supervision policies produce diagnosed failures, never hangs: a
/// poisoned spec fails permanently without burning retries, and a
/// runaway spec trips the engine-step budget, is retried, and fails
/// with the budget named in its diagnostic.
#[test]
fn supervision_converts_bad_jobs_into_diagnosed_failures() {
    let dir = test_dir("supervise");
    let cfg = ServeConfig {
        workers: 2,
        step_budget: 50_000,
        retry: RetryPolicy {
            max_retries: 1,
            backoff_base_ms: 1,
            backoff_cap_ms: 2,
        },
        ..ServeConfig::default()
    };
    let server = JobServer::open(&dir, cfg).expect("open");
    let (poisoned, _) = server
        .submit_text("{\"name\": \"broken\"")
        .expect("accepted");
    // A stopping rule demanding 100k batches churns the engine well
    // past 50k steps before it can ever be satisfied.
    let runaway = r#"{"name": "runaway", "topology": "mesh:4x4",
        "schemes": ["dual-path"], "loads_us": [40],
        "destinations": 3, "replications": 1, "seed": 1,
        "stopping": {"warmup": 10, "batch_size": 100,
                     "min_batches": 100000, "max_batches": 100000,
                     "max_in_flight_per_node": 1000000}}"#
        .to_string();
    let (runaway_id, _) = server.submit_text(&runaway).expect("accepted");
    let (healthy_id, _) = server
        .submit_text(&spec_json("healthy", 5, 700))
        .expect("accepted");
    server.run_until_drained();

    let ledger = server.ledger();
    assert!(ledger.balanced(), "{ledger}");
    assert_eq!(ledger.completed, 1);
    assert_eq!(ledger.failed, 2);
    let outcomes = server.outcomes();
    match &outcomes[&poisoned] {
        JobOutcome::Failed { diagnostic } => {
            assert!(diagnostic.contains("spec rejected"), "{diagnostic}")
        }
        other => panic!("poisoned spec: {other:?}"),
    }
    match &outcomes[&runaway_id] {
        JobOutcome::Failed { diagnostic } => {
            assert!(diagnostic.contains("step budget"), "{diagnostic}");
            assert!(
                diagnostic.contains("retry budget exhausted"),
                "{diagnostic}"
            );
        }
        other => panic!("runaway spec: {other:?}"),
    }
    assert!(matches!(
        outcomes[&healthy_id],
        JobOutcome::Completed { .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos knobs are exercised through the public config too: a server
/// with aggressive panic injection still balances its ledger, because
/// every panic is caught, retried and — past the budget — diagnosed.
#[test]
fn injected_panics_never_break_the_ledger() {
    let dir = test_dir("panics");
    let cfg = ServeConfig {
        workers: 3,
        retry: RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 2,
        },
        chaos: Some(ChaosConfig {
            seed: 99,
            panic_per_mille: 500,
            stall_per_mille: 0,
        }),
        ..ServeConfig::default()
    };
    let server = JobServer::open(&dir, cfg).expect("open");
    for i in 0..8 {
        server
            .submit_text(&spec_json(&format!("p{i}"), 100 + i, 700))
            .expect("accepted");
    }
    server.run_until_drained();
    let ledger = server.ledger();
    assert!(ledger.balanced(), "{ledger}");
    assert_eq!(ledger.accepted, 8);
    assert_eq!(ledger.completed + ledger.failed, 8);
    for outcome in server.outcomes().values() {
        if let JobOutcome::Failed { diagnostic } = outcome {
            assert!(diagnostic.contains("panic"), "{diagnostic}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
