//! Barrier synchronization on a hypercube via multicast — the Chapter 1
//! application ("this 'barrier synchronization' can be efficiently
//! implemented using multicast communication").
//!
//! A barrier among `p` participating processes (an arbitrary node subset)
//! is implemented as gather-then-release:
//!
//! 1. every participant unicasts an *arrive* message to the coordinator;
//! 2. when all have arrived, the coordinator multicasts one *release*
//!    message to the participants.
//!
//! The release phase is where multicast routing matters: this example
//! measures the complete barrier time on a 6-cube in the flit-level
//! simulator with the release multicast routed by dual-path, multi-path,
//! and naive per-destination unicasts.
//!
//! ```text
//! cargo run --release --example barrier_sync
//! ```

use mcast::prelude::*;
use mcast::sim::PlanPath;
use mcast::sim::PlanWorm;

/// Builds the plan for the arrive phase: one E-cube unicast per
/// participant toward the coordinator.
fn arrive_plans(cube: &Hypercube, coordinator: NodeId, members: &[NodeId]) -> Vec<DeliveryPlan> {
    members
        .iter()
        .filter(|&&m| m != coordinator)
        .map(|&m| {
            let path = cube.shortest_path(m, coordinator);
            DeliveryPlan {
                source: m,
                destinations: vec![coordinator],
                worms: vec![PlanWorm::Path(PlanPath {
                    nodes: path,
                    class: ClassChoice::Any,
                })],
            }
        })
        .collect()
}

/// Runs one barrier and returns (arrive-phase time, release-phase time)
/// in microseconds.
fn run_barrier(
    cube: &Hypercube,
    coordinator: NodeId,
    members: &[NodeId],
    release_router: &dyn MulticastRouter,
) -> (f64, f64) {
    // Phase 1: all arrive messages injected simultaneously.
    let mut engine = Engine::new(Network::new(cube, 1), SimConfig::default());
    for plan in arrive_plans(cube, coordinator, members) {
        engine.inject(&plan);
    }
    assert!(engine.run_to_quiescence(), "unicast gather cannot deadlock");
    let gather_done = engine.now();

    // Phase 2: the release multicast, starting where the gather ended.
    let mc = MulticastSet::new(coordinator, members.iter().copied());
    engine.inject(&release_router.plan(&mc));
    assert!(engine.run_to_quiescence(), "deadlock-free release");
    let release_done = engine.now();
    (
        gather_done as f64 / 1000.0,
        (release_done - gather_done) as f64 / 1000.0,
    )
}

/// A router that sends one separate unicast worm per destination — the
/// "multicast unsupported" baseline of Chapter 1.
struct MultiUnicastRouter {
    cube: Hypercube,
}

impl MulticastRouter for MultiUnicastRouter {
    fn name(&self) -> &'static str {
        "multi-unicast"
    }
    fn plan(&self, mc: &MulticastSet) -> DeliveryPlan {
        DeliveryPlan {
            source: mc.source,
            destinations: mc.destinations.clone(),
            worms: mc
                .destinations
                .iter()
                .map(|&d| {
                    PlanWorm::Path(PlanPath {
                        nodes: self.cube.shortest_path(mc.source, d),
                        class: ClassChoice::Any,
                    })
                })
                .collect(),
        }
    }
}

fn main() {
    let cube = Hypercube::new(6);
    let coordinator = 0;
    // Participants: every other node (a 32-process barrier).
    let members: Vec<NodeId> = (0..cube.num_nodes()).filter(|n| n % 2 == 1).collect();
    println!(
        "barrier of {} processes on a {} (coordinator {})\n",
        members.len(),
        cube.describe(),
        coordinator
    );
    println!(
        "{:<14} {:>12} {:>13} {:>12}",
        "release via", "gather (us)", "release (us)", "total (us)"
    );
    let routers: Vec<Box<dyn MulticastRouter>> = vec![
        Box::new(DualPathRouter::hypercube(cube)),
        Box::new(MultiPathCubeRouter::new(cube)),
        Box::new(FixedPathRouter::hypercube(cube)),
        Box::new(MultiUnicastRouter { cube }),
    ];
    for router in &routers {
        let (gather, release) = run_barrier(&cube, coordinator, &members, router.as_ref());
        println!(
            "{:<14} {:>12.1} {:>13.1} {:>12.1}",
            router.name(),
            gather,
            release,
            gather + release
        );
    }
    println!("\nthe release multicast dominates the barrier; path-based multicast");
    println!("cuts it versus separate unicasts while remaining deadlock-free.");
}
