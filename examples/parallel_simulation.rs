//! Parallel logic-circuit simulation — the motivating workload of
//! Chapter 1 ("the output of a gate may become the input of some
//! connected gates"): every gate's output event must be multicast to the
//! processors hosting its fanout gates.
//!
//! This example synthesizes a random combinational circuit, partitions it
//! across a 16×16 mesh multicomputer, derives the real multicast sets
//! from the fanout lists, and compares the deadlock-free routing schemes
//! on that workload — first statically (traffic), then under dynamic
//! contention in the flit-level simulator.
//!
//! ```text
//! cargo run --release --example parallel_simulation
//! ```

use mcast::prelude::*;
use mcast::workload::Accumulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A gate with a fanout list (indices of driven gates).
struct Gate {
    node: NodeId,
    fanout: Vec<usize>,
}

/// Builds a random layered circuit and maps gates round-robin onto the
/// mesh (a crude but typical partitioner).
fn synthesize_circuit(num_gates: usize, mesh: &Mesh2D, seed: u64) -> Vec<Gate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gates: Vec<Gate> = (0..num_gates)
        .map(|i| Gate {
            node: i % mesh.num_nodes(),
            fanout: Vec::new(),
        })
        .collect();
    // Each gate drives 1..=6 gates later in topological order.
    #[allow(clippy::needless_range_loop)] // gates[i] and gates[j] alias the same vec
    for i in 0..num_gates.saturating_sub(1) {
        let fanout = rng.gen_range(1..=6usize);
        for _ in 0..fanout {
            let j = rng.gen_range(i + 1..num_gates);
            if !gates[i].fanout.contains(&j) {
                gates[i].fanout.push(j);
            }
        }
    }
    gates
}

/// The multicast a gate's output event needs: one copy to every distinct
/// node hosting a fanout gate.
fn event_multicast(gates: &[Gate], i: usize) -> Option<MulticastSet> {
    let src = gates[i].node;
    let dests: Vec<NodeId> = gates[i].fanout.iter().map(|&j| gates[j].node).collect();
    let mc = MulticastSet::new(src, dests);
    (mc.k() > 0).then_some(mc)
}

fn main() {
    let mesh = Mesh2D::new(16, 16);
    let labeling = mesh2d_snake(&mesh);
    let gates = synthesize_circuit(4096, &mesh, 0xc1c5);
    let events: Vec<MulticastSet> = (0..gates.len())
        .filter_map(|i| event_multicast(&gates, i))
        .collect();
    println!(
        "circuit: {} gates on a 16x16 mesh, {} multicast events, mean fanout-destinations {:.2}\n",
        gates.len(),
        events.len(),
        events.iter().map(|m| m.k()).sum::<usize>() as f64 / events.len() as f64
    );

    // --- Static traffic over the whole event set. ---
    println!("{:<14} {:>12} {:>12}", "scheme", "traffic/evt", "max hops");
    for (name, route_fn) in [
        (
            "dual-path",
            Box::new(|mc: &MulticastSet| MulticastRoute::Star(dual_path(&mesh, &labeling, mc)))
                as Box<dyn Fn(&MulticastSet) -> MulticastRoute>,
        ),
        (
            "multi-path",
            Box::new(|mc: &MulticastSet| {
                MulticastRoute::Star(multi_path_mesh(&mesh, &labeling, mc))
            }),
        ),
        (
            "fixed-path",
            Box::new(|mc: &MulticastSet| MulticastRoute::Star(fixed_path(&mesh, &labeling, mc))),
        ),
        (
            "multi-unicast",
            Box::new(|mc: &MulticastSet| {
                // One XY path per destination.
                MulticastRoute::Star(
                    mc.destinations
                        .iter()
                        .map(|&d| PathRoute::new(mesh.shortest_path(mc.source, d)))
                        .collect(),
                )
            }),
        ),
    ] {
        let mut traffic = Accumulator::new();
        let mut hops = Accumulator::new();
        for mc in &events {
            let route = route_fn(mc);
            traffic.push(route.traffic() as f64);
            hops.push(route.max_dest_hops(mc).unwrap_or(0) as f64);
        }
        println!(
            "{:<14} {:>12.2} {:>12.2}",
            name,
            traffic.mean(),
            hops.mean()
        );
    }

    // --- Dynamic: replay a slice of the event stream under contention. ---
    println!("\nreplaying 2000 events through the wormhole simulator (one every 4 us):");
    for router in [
        Box::new(DualPathRouter::mesh(mesh)) as Box<dyn MulticastRouter>,
        Box::new(MultiPathMeshRouter::new(mesh)),
    ] {
        let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
        let mut t = 0u64;
        let mut injected = 0usize;
        for mc in events.iter().take(2000) {
            engine.run_until(t);
            engine.inject(&router.plan(mc));
            injected += 1;
            t += 4_000; // one gate event per 4 µs, network-wide
        }
        assert!(engine.run_to_quiescence(), "deadlock-free schemes drain");
        let done = engine.take_completed();
        let mut lat = Accumulator::new();
        for c in &done {
            lat.push((c.completed_at - c.injected_at) as f64 / 1000.0);
        }
        println!(
            "  {:<11} {} events, mean event-delivery latency {:.1} us",
            router.name(),
            injected,
            lat.mean()
        );
    }
}
