//! Quickstart: route one multicast with every scheme and push it through
//! the wormhole simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcast::prelude::*;

fn main() {
    // The dissertation's running example: a 6×6 mesh, source (3,2), nine
    // destinations (§6.2.2, Figs 6.13/6.16/6.17).
    let mesh = Mesh2D::new(6, 6);
    let labeling = mesh2d_snake(&mesh);
    let n = |x: usize, y: usize| mesh.node(x, y);
    let mc = MulticastSet::new(
        n(3, 2),
        [
            n(0, 0),
            n(0, 2),
            n(0, 5),
            n(1, 3),
            n(4, 5),
            n(5, 0),
            n(5, 1),
            n(5, 3),
            n(5, 4),
        ],
    );
    println!(
        "multicast: source (3,2), {} destinations on a 6x6 mesh\n",
        mc.k()
    );

    // --- Static comparison: traffic and worst-case distance. ---
    println!("{:<14} {:>8} {:>10}", "scheme", "traffic", "max hops");
    let dual = MulticastRoute::Star(dual_path(&mesh, &labeling, &mc));
    let multi = MulticastRoute::Star(multi_path_mesh(&mesh, &labeling, &mc));
    let fixed = MulticastRoute::Star(fixed_path(&mesh, &labeling, &mc));
    let xfirst = MulticastRoute::Tree(xfirst_tree(&mesh, &mc));
    let divided = MulticastRoute::Tree(divided_greedy_tree(&mesh, &mc));
    for (name, route) in [
        ("dual-path", &dual),
        ("multi-path", &multi),
        ("fixed-path", &fixed),
        ("x-first MT", &xfirst),
        ("divided MT", &divided),
    ] {
        route.validate(&mesh, &mc).expect("route must be valid");
        println!(
            "{:<14} {:>8} {:>10}",
            name,
            route.traffic(),
            route.max_dest_hops(&mc).unwrap()
        );
    }

    // --- Dynamic: the same message, flit by flit. ---
    println!("\nwormhole simulation (128-byte message, 20 Mbyte/s channels):");
    for router in [
        Box::new(DualPathRouter::mesh(mesh)) as Box<dyn MulticastRouter>,
        Box::new(MultiPathMeshRouter::new(mesh)),
        Box::new(FixedPathRouter::mesh(mesh)),
    ] {
        let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
        engine.inject(&router.plan(&mc));
        assert!(
            engine.run_to_quiescence(),
            "deadlock-free schemes always drain"
        );
        let done = engine.take_completed().remove(0);
        println!(
            "  {:<11} message delivered to all {} destinations in {:.1} us",
            router.name(),
            done.deliveries.len(),
            done.completed_at as f64 / 1000.0
        );
    }
}
