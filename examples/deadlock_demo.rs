//! Reproduces the deadlock configurations of §6.1 in the flit-level
//! simulator — and shows the Chapter 6 schemes resolving them.
//!
//! * Fig 6.1: two simultaneous nCUBE-2-style broadcasts on a 3-cube
//!   block forever;
//! * Fig 6.4: two X-first multicast trees on a 3×4 mesh block forever;
//! * the double-channel tree scheme and the path-based schemes complete
//!   the same traffic.
//!
//! ```text
//! cargo run --release --example deadlock_demo
//! ```

use mcast::prelude::*;
use mcast::sim::deadlock::{fig_6_1_broadcasts, fig_6_4_multicasts, run_closed_scenario};
use mcast::sim::diagnose::{find_wait_cycle, render_wait_cycle};

fn report(label: &str, outcome: &mcast::sim::deadlock::ScenarioOutcome) {
    if outcome.completed {
        println!(
            "  {label:<28} COMPLETED at t = {:.1} us",
            outcome.finished_at as f64 / 1000.0
        );
    } else {
        println!(
            "  {label:<28} DEADLOCKED with {} messages wedged (no event can fire)",
            outcome.stuck_messages
        );
    }
}

fn main() {
    println!("Fig 6.1 — two simultaneous broadcasts from 000 and 001 on a 3-cube:");
    let cube = Hypercube::new(3);
    let mcs = fig_6_1_broadcasts(cube);
    let outcome = run_closed_scenario(
        &EcubeTreeRouter::new(cube),
        Network::new(&cube, 1),
        SimConfig::default(),
        &mcs,
    );
    report("nCUBE-2 e-cube trees:", &outcome);
    let outcome = run_closed_scenario(
        &DualPathRouter::hypercube(cube),
        Network::new(&cube, 1),
        SimConfig::default(),
        &mcs,
    );
    report("dual-path:", &outcome);
    let outcome = run_closed_scenario(
        &MultiPathCubeRouter::new(cube),
        Network::new(&cube, 1),
        SimConfig::default(),
        &mcs,
    );
    report("multi-path:", &outcome);

    println!("\nFig 6.4 — two crossing multicasts on a 4x3 mesh:");
    let mesh = Mesh2D::new(4, 3);
    let mcs = fig_6_4_multicasts(&mesh);
    let outcome = run_closed_scenario(
        &XFirstTreeRouter::new(mesh),
        Network::new(&mesh, 1),
        SimConfig::default(),
        &mcs,
    );
    report("X-first trees (single ch.):", &outcome);
    // Reconstruct the Fig 6.2-style wait cycle from a fresh wedge.
    {
        let router = XFirstTreeRouter::new(mesh);
        let mut engine = Engine::new(Network::new(&mesh, 1), SimConfig::default());
        for mc in &mcs {
            engine.inject(&router.plan(mc));
        }
        assert!(!engine.run_to_quiescence());
        if let Some(cycle) = find_wait_cycle(&engine) {
            print!(
                "{}",
                render_wait_cycle(&cycle)
                    .lines()
                    .map(|l| format!("    {l}\n"))
                    .collect::<String>()
            );
        }
    }
    let dc = DoubleChannelTreeRouter::new(mesh);
    let outcome = run_closed_scenario(
        &dc,
        Network::new(&mesh, dc.required_classes()),
        SimConfig::default(),
        &mcs,
    );
    report("double-channel trees:", &outcome);
    let outcome = run_closed_scenario(
        &DualPathRouter::mesh(mesh),
        Network::new(&mesh, 1),
        SimConfig::default(),
        &mcs,
    );
    report("dual-path:", &outcome);

    println!("\nthe Dally-Seitz criterion, checked structurally:");
    // The dual-path high/low subnetworks are acyclic by construction, so
    // no channel dependency cycle can exist.
    let labeling = mesh2d_snake(&mesh);
    let high = labeling.high_channels(&mesh);
    let low = labeling.low_channels(&mesh);
    println!(
        "  4x3 mesh: {} high channels + {} low channels, each subnetwork label-acyclic",
        high.len(),
        low.len()
    );
    for c in &high {
        assert!(labeling.label(c.from) < labeling.label(c.to));
    }
    for c in &low {
        assert!(labeling.label(c.from) > labeling.label(c.to));
    }
    println!("  every high channel climbs labels, every low channel descends: no cycles.");
}
