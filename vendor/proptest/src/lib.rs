//! Vendored offline subset of the `proptest` 1.x API.
//!
//! The build environment has no crates.io access, so this shim provides
//! the slice of proptest the repository's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, [`Just`], integer
//! range strategies, tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! macros.
//!
//! Differences from upstream proptest, by design:
//! * **No shrinking.** A failing case reports its seed and case number
//!   instead; re-running is deterministic, so the case is reproducible.
//! * **Derived seeding.** Each test's RNG seed is an FNV-1a hash of the
//!   test's name, so runs are deterministic across machines without a
//!   persistence file.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SampleRange;
use std::ops::{Range, RangeInclusive};

/// The RNG driving value generation.
pub type TestRng = StdRng;

/// An error raised inside a proptest case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition; retried
    /// with fresh inputs, not counted as a pass.
    Reject(String),
    /// A `prop_assert*!` failed; aborts the whole test.
    Fail(String),
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to build a second-stage strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: Copy> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SampleRange, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, R>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: Clone + SampleRange<usize>> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample_single(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a proptest case; on failure the case (and
/// test) fails with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l,
                r,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

/// Discards the current case (not counted as a pass) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Each inner `fn name(pat in strategy) { .. }`
/// becomes a `#[test]` running `config.cases` passing cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:pat in $strat:expr) $body:block
        )*
    ) => {
        $crate::proptest!(@impl $cfg; $( $(#[$meta])* fn $name($pat in $strat) $body )*);
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:pat in $strat:expr) $body:block
        )*
    ) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default();
            $( $(#[$meta])* fn $name($pat in $strat) $body )*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($pat:pat in $strat:expr) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                    $crate::seed_from_name(::std::stringify!($name)),
                );
                let strategy = $strat;
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20) + 100,
                        "proptest {}: too many rejected cases ({} passed of {} wanted)",
                        ::std::stringify!($name), passed, config.cases
                    );
                    let $pat = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (deterministic; re-run reproduces): {}",
                                ::std::stringify!($name), attempts, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
