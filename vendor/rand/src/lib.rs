//! Vendored offline subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses
//! (see `vendor/README.md`): a seedable [`rngs::StdRng`], the [`Rng`]
//! extension trait with `gen_range`/`gen`/`gen_bool`, and [`SeedableRng`].
//!
//! [`rngs::StdRng`] here is **xoshiro256++** seeded through SplitMix64 —
//! not the ChaCha12 generator real `rand` uses — so streams differ from
//! upstream `rand` for the same seed. Every experiment in this repo is
//! seeded through this one implementation, so results remain
//! reproducible bit-for-bit against themselves, which is the guarantee
//! EXPERIMENTS.md relies on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`. `high > low` required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Multiply-shift rejection-free mapping (Lemire); the
                // modulo bias over a 128-bit product of a 64-bit draw is
                // below 2^-64 for every span used in this repo.
                let draw = rng.next_u64() as u128;
                low.wrapping_add(((draw * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample empty range");
                if high < <$t>::MAX {
                    <$t>::sample_half_open(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_half_open(rng, low - 1, high).wrapping_add(1)
                } else {
                    // The full domain: every bit pattern is a valid value.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws a "standard" sample (uniform over the type's natural domain;
    /// `[0, 1)` for floats).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::standard_sample(rng) as f32
    }
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A standard sample (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++ with
    /// SplitMix64 seed expansion (Blackman & Vigna). Statistically solid
    /// for simulation workloads and fully deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let expect = n / 10;
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
