//! Vendored offline subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so this shim provides
//! the slice of Criterion the repository's benchmarks use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros (both forms).
//!
//! Instead of Criterion's statistical machinery it runs a warm-up
//! iteration followed by `sample_size` timed iterations and prints the
//! minimum, mean, and maximum per-iteration wall time. Good enough to
//! spot order-of-magnitude regressions under `cargo bench`; the real
//! value for tier-1 is that every bench target still compiles and runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut g);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `f` (called once per sample).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    // Warm-up: populate caches and let lazy statics settle.
    f(&mut b);
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        f(&mut b);
        min = min.min(b.elapsed);
        max = max.max(b.elapsed);
        total += b.elapsed;
    }
    let mean = total / samples as u32;
    println!(
        "bench {label:<48} min {min:>12?}  mean {mean:>12?}  max {max:>12?}  ({samples} samples)"
    );
}

/// Declares a group of benchmark targets. Supports both the positional
/// form `criterion_group!(benches, f, g)` and the named form with
/// `name =` / `config =` / `targets =`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
